type profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  jitter : Util.Dist.t;
  extra_delay : float;
}

let pristine =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; jitter = Util.Dist.Constant 0.0; extra_delay = 0.0 }

(* Constant 0.0 is the only jitter distribution that provably never
   perturbs a delivery; anything else makes the profile non-pristine. *)
let jitter_is_trivial = function Util.Dist.Constant 0.0 -> true | _ -> false

let is_pristine p =
  (* The jitter term was historically omitted, so a jitter-only profile
     was classified pristine and silently injected nothing. *)
  p.drop = 0.0 && p.duplicate = 0.0 && p.reorder = 0.0 && p.extra_delay = 0.0
  && jitter_is_trivial p.jitter

let validate_profile p =
  let prob what x =
    if x < 0.0 || x > 1.0 || Float.is_nan x then
      Error (Printf.sprintf "%s must be a probability in [0, 1]" what)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" p.drop in
  let* () = prob "duplicate" p.duplicate in
  let* () = prob "reorder" p.reorder in
  let* _ = Result.map_error (fun e -> "bad jitter distribution: " ^ e) (Util.Dist.validate p.jitter) in
  if p.extra_delay < 0.0 || Float.is_nan p.extra_delay then Error "extra_delay must be non-negative"
  else Ok p

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(jitter = Util.Dist.Constant 0.0)
    ?(extra_delay = 0.0) () =
  validate_profile { drop; duplicate; reorder; jitter; extra_delay }

let make_exn ?drop ?duplicate ?reorder ?jitter ?extra_delay () =
  match make ?drop ?duplicate ?reorder ?jitter ?extra_delay () with
  | Ok p -> p
  | Error msg -> invalid_arg ("Faults.make: " ^ msg)

type counters = {
  mutable drops : int;
  mutable duplicates : int;
  mutable reorders : int;
  mutable delayed : int;
  mutable jittered : int;
}

type t = {
  rng : Util.Prng.t;
  default : profile;
  links : (int * int, profile) Hashtbl.t;
  counters : counters;
}

let create ~rng profile =
  match validate_profile profile with
  | Error msg -> invalid_arg ("Faults.create: " ^ msg)
  | Ok default ->
      {
        rng;
        default;
        links = Hashtbl.create 8;
        counters = { drops = 0; duplicates = 0; reorders = 0; delayed = 0; jittered = 0 };
      }

let of_seed ~seed profile = create ~rng:(Util.Prng.create seed) profile

let set_link t ~from ~dst profile =
  match validate_profile profile with
  | Error msg -> invalid_arg ("Faults.set_link: " ^ msg)
  | Ok p -> Hashtbl.replace t.links (from, dst) p

let link_profile t ~from ~dst =
  match Hashtbl.find_opt t.links (from, dst) with Some p -> p | None -> t.default

let default_profile t = t.default

(* A fault plan never perturbs the traffic counters: transmissions are
   accounted at send time, exactly as Section 5 counts them; faults only
   decide what the wire then does to the already-charged message. *)
let plan t ~from ~dst =
  let p = link_profile t ~from ~dst in
  if is_pristine p then [ 0.0 ]
  else begin
    let c = t.counters in
    (* Draw the three uniforms unconditionally so the fault stream of a link
       does not depend on which knobs are zero — only on the seed. *)
    let u_drop = Util.Prng.float t.rng in
    let u_dup = Util.Prng.float t.rng in
    let u_reorder = Util.Prng.float t.rng in
    if u_drop < p.drop then begin
      c.drops <- c.drops + 1;
      []
    end
    else begin
      let base =
        if p.extra_delay > 0.0 then begin
          c.delayed <- c.delayed + 1;
          p.extra_delay
        end
        else 0.0
      in
      (* Jitter perturbs {e every} delivery of a non-trivial profile (it
         used to fire only on a reorder, so a jitter-only profile was a
         silent no-op); the reorder knob additionally defers the delivery
         by a second, independent draw so later sends can overtake it. *)
      let jitter_draw () =
        if jitter_is_trivial p.jitter then 0.0
        else begin
          c.jittered <- c.jittered + 1;
          Util.Dist.sample p.jitter t.rng
        end
      in
      let reorder_kick u =
        if u < p.reorder then begin
          c.reorders <- c.reorders + 1;
          Util.Dist.sample p.jitter t.rng
        end
        else 0.0
      in
      let first = base +. jitter_draw () +. reorder_kick u_reorder in
      if u_dup < p.duplicate then begin
        c.duplicates <- c.duplicates + 1;
        [ first; base +. jitter_draw () +. reorder_kick (Util.Prng.float t.rng) ]
      end
      else [ first ]
    end
  end

let drops t = t.counters.drops
let duplicates t = t.counters.duplicates
let reorders t = t.counters.reorders
let delayed t = t.counters.delayed
let jittered t = t.counters.jittered
let total_injected t = drops t + duplicates t + reorders t + delayed t + jittered t

let reset_counters t =
  let c = t.counters in
  c.drops <- 0;
  c.duplicates <- 0;
  c.reorders <- 0;
  c.delayed <- 0;
  c.jittered <- 0

let pp_profile ppf p =
  Format.fprintf ppf "faults(drop=%g, dup=%g, reorder=%g, jitter=%a, delay=%g)" p.drop p.duplicate
    p.reorder Util.Dist.pp p.jitter p.extra_delay

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%a@,injected: %d drops, %d duplicates, %d reorders, %d delayed, %d jittered@]"
    pp_profile t.default (drops t) (duplicates t) (reorders t) (delayed t) (jittered t)
