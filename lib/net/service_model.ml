type t = {
  queue_capacity : int;
  base : Util.Dist.t;
  per_category : (Message.category * Util.Dist.t) list;
  client : Util.Dist.t;
}

(* Calibrated in units of the default one-hop latency (0.5): applying a
   Block_update is a journaled synchronous write, by far the heaviest step —
   the stable-memory measurements put its mean near half a network hop with
   coefficient of variation below one, hence Erlang-2 (CV 1/sqrt 2) at mean
   0.25.  Votes are metadata-only and cheap; block transfers move data but
   skip the journal fsync; everything else defaults to [base]. *)
let default =
  {
    queue_capacity = 64;
    base = Util.Dist.Constant 0.05;
    per_category =
      [
        (Message.Vote_request, Util.Dist.Constant 0.04);
        (Message.Vote_reply, Util.Dist.Constant 0.02);
        (Message.Block_update, Util.Dist.Erlang (2, 8.0));
        (Message.Write_ack, Util.Dist.Constant 0.02);
        (Message.Block_request, Util.Dist.Constant 0.06);
        (Message.Block_transfer, Util.Dist.Constant 0.12);
      ];
    client = Util.Dist.Constant 0.08;
  }

let dist_for t category =
  match List.assoc_opt category t.per_category with Some d -> d | None -> t.base

let cost_of t category rng = Util.Dist.sample (dist_for t category) rng
let client_cost t rng = Util.Dist.sample t.client rng
let mean_client_cost t = Util.Dist.mean t.client

let validate t =
  if t.queue_capacity < 1 then Error "queue_capacity must be at least 1"
  else begin
    let rec check = function
      | [] -> Ok t
      | (label, d) :: rest -> (
          match Util.Dist.validate d with
          | Ok _ -> check rest
          | Error e -> Error (Printf.sprintf "bad %s distribution: %s" label e))
    in
    check
      (("base", t.base) :: ("client", t.client)
      :: List.map (fun (c, d) -> (Message.to_string c, d)) t.per_category)
  end

let pp ppf t =
  Format.fprintf ppf "service(capacity=%d, base=%a, client=%a)" t.queue_capacity Util.Dist.pp t.base
    Util.Dist.pp t.client
