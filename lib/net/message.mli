(** Taxonomy of the "high-level transmissions" of Section 5.

    The paper's traffic analysis counts high-level requests — vote
    collections, block transfers, version-vector exchanges — rather than wire
    packets, arguing that low-level message counts are proportional.  We give
    each such transmission a category so that traffic accounting can report
    exactly the quantities the paper compares. *)

type category =
  | Vote_request  (** voting: collect votes / ascertain a quorum *)
  | Vote_reply  (** a site's vote: version number + weight *)
  | Block_update  (** the new block + version sent to quorum/available sites *)
  | Write_ack  (** AC only: reply to a write, refreshing the was-available set *)
  | Block_request  (** voting read: ask the most current site for the block *)
  | Block_transfer  (** the requested block's contents *)
  | Recovery_probe  (** recovering site's "who is operational?" enquiry *)
  | Recovery_reply  (** response to a recovery probe *)
  | Version_vector_send  (** recovering site sends its version vector v *)
  | Version_vector_reply  (** v' plus the blocks modified during the outage *)
  | Was_available_update  (** AC: recovered site sends its new W_s *)

val all : category list
(** Every category, for iteration in reports. *)

val to_string : category -> string
val pp : Format.formatter -> category -> unit

(** The operation on whose behalf a transmission was sent, for the per-class
    breakdowns of Figures 11 and 12.  [Repair] is outside the paper's
    taxonomy: it tags steady-state peer read-repair of a checksum-invalid
    block, so the robustness tax of an honest storage model is accounted
    separately from the Section 5 categories (its cells stay zero when no
    media faults are injected). *)
type operation = Read | Write | Recovery | Repair

val operation_to_string : operation -> string
val all_operations : operation list
val pp_operation : Format.formatter -> operation -> unit

(** Why the hardened ingress refused an arriving frame.  The taxonomy is
    codec-agnostic — {!Net} does not depend on [lib/codec] — so a payload
    module maps its own decoder errors onto these classes (frame-envelope
    damage: truncation, magic, trailing bytes, CRC; payload damage: an
    unknown dispatch tag, a structurally malformed body). *)
type reject =
  | Reject_truncated
  | Reject_bad_magic
  | Reject_trailing
  | Reject_crc
  | Reject_bad_tag
  | Reject_malformed

val all_rejects : reject list
(** Every reject class, for iteration in reports. *)

val reject_to_string : reject -> string
val pp_reject : Format.formatter -> reject -> unit
