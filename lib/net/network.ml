module type PAYLOAD = sig
  type t

  val category : t -> Message.category
  val size : t -> int
  val encode : t -> Bytes.t
  val decode_frame : Bytes.t -> (t, Message.reject) result
end

type mode = Multicast | Unicast

let mode_to_string = function Multicast -> "multicast" | Unicast -> "unicast"

type quarantine = { threshold : int; cooldown : float }

let default_quarantine = { threshold = 3; cooldown = 20.0 }

let validate_quarantine q =
  if q.threshold < 1 then Error "quarantine threshold must be >= 1"
  else if q.cooldown <= 0.0 || Float.is_nan q.cooldown then
    Error "quarantine cooldown must be positive"
  else Ok q

(* Link-layer redelivery budget of encoded mode: a CRC-rejected frame is
   redelivered (fresh latency + corruption draws) at most this many times
   before the loss becomes the retry layer's problem.  At ambient per-frame
   corruption rate p the residual loss is p^(budget+1), which keeps
   probabilistic corruption inside every chaos envelope; a persistent
   (p = 1) corruptor defeats any finite budget by design. *)
let redelivery_budget = 6

module Make (P : PAYLOAD) = struct
  type t = {
    engine : Sim.Engine.t;
    mode : mode;
    latency : Util.Dist.t;
    rng : Util.Prng.t;
    traffic : Traffic.t;
    n_sites : int;
    up : bool array;
    handlers : (from:int -> P.t -> unit) option array;
    (* group.(i) = group.(j) && group.(i) >= 0 means i and j can talk;
       -1 means isolated.  No partition: all zero. *)
    group : int array;
    mutable delivered : int;
    mutable faults : Faults.t option;
    (* Service model: when installed, every delivery and client admission
       goes through the destination site's bounded queue.  [None] (the
       default) is the exact legacy zero-cost path — no queue, no extra
       rng draws, bit-identical behaviour. *)
    mutable service : (Service_model.t * Util.Prng.t) option;
    servers : Sim.Server.t option array;
    (* Encoded delivery: when on, payloads cross the wire as their encoded
       frames and the receive path re-decodes (and may reject) them.  Off
       (the default) is the exact legacy in-heap path — no encode, no
       decode, no extra rng draws, bit-identical behaviour. *)
    mutable encoded : bool;
    mutable quarantine : quarantine;
    qstates : (int * int, qstate) Hashtbl.t; (* keyed (receiver, sender) *)
    mutable reject_hook : (dst:int -> from:int -> Message.reject -> unit) option;
    mutable corrupt_rejected : int;
    mutable corrupt_quarantined : int;
    mutable corrupt_survived : int;
    mutable retransmissions : int;
    mutable quarantine_trips : int;
  }

  and qstate = { mutable strikes : int; mutable blocked_until : float }

  let create ?faults engine ~mode ~latency ~rng ~n_sites =
    if n_sites <= 0 then invalid_arg "Network.create: need at least one site";
    {
      engine;
      mode;
      latency;
      rng;
      traffic = Traffic.create ();
      n_sites;
      up = Array.make n_sites true;
      handlers = Array.make n_sites None;
      group = Array.make n_sites 0;
      delivered = 0;
      faults;
      service = None;
      servers = Array.make n_sites None;
      encoded = false;
      quarantine = default_quarantine;
      qstates = Hashtbl.create 8;
      reject_hook = None;
      corrupt_rejected = 0;
      corrupt_quarantined = 0;
      corrupt_survived = 0;
      retransmissions = 0;
      quarantine_trips = 0;
    }

  let engine t = t.engine
  let mode t = t.mode
  let n_sites t = t.n_sites
  let traffic t = t.traffic
  let faults t = t.faults
  let install_faults t f = t.faults <- Some f
  let set_encoded t on = t.encoded <- on
  let encoded t = t.encoded

  let set_quarantine t q =
    match validate_quarantine q with
    | Ok q -> t.quarantine <- q
    | Error msg -> invalid_arg ("Network.set_quarantine: " ^ msg)

  let quarantine_policy t = t.quarantine
  let set_reject_hook t hook = t.reject_hook <- Some hook
  let frames_retransmitted t = t.retransmissions
  let quarantine_trips t = t.quarantine_trips
  let corrupt_rejected t = t.corrupt_rejected
  let corrupt_quarantined t = t.corrupt_quarantined
  let corrupt_survived t = t.corrupt_survived

  let corruption_conserved t =
    (* The corruption draw and its classification happen back-to-back
       inside one ingress step, so the identity holds at every instant,
       not only after a drain. *)
    let corrupted =
      match t.faults with Some f -> Faults.corrupted_deliveries f | None -> 0
    in
    corrupted = t.corrupt_rejected + t.corrupt_quarantined + t.corrupt_survived

  let check_site t id name =
    if id < 0 || id >= t.n_sites then invalid_arg (Printf.sprintf "Network.%s: bad site %d" name id)

  let install_service t model ~rng =
    (match Service_model.validate model with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Network.install_service: " ^ e));
    t.service <- Some (model, rng);
    for i = 0 to t.n_sites - 1 do
      t.servers.(i) <- Some (Sim.Server.create t.engine ~capacity:model.Service_model.queue_capacity)
    done

  let service t = Option.map fst t.service

  let server t id =
    check_site t id "server";
    t.servers.(id)

  let set_rate_factor t id factor =
    check_site t id "set_rate_factor";
    match t.servers.(id) with Some srv -> Sim.Server.set_rate_factor srv factor | None -> ()

  let flood_site t id ~count =
    check_site t id "flood_site";
    match (t.servers.(id), t.service) with
    | Some srv, Some (model, rng) ->
        Sim.Server.flood srv ~count ~cost:(Service_model.cost_of model Message.Block_request rng)
    | _ -> ()

  let submit_client t ~site work =
    check_site t site "submit_client";
    match (t.service, t.servers.(site)) with
    | Some (model, rng), Some srv ->
        let cost = Service_model.client_cost model rng in
        if Sim.Server.submit srv ~cost work then `Queued else `Shed
    | _ -> `Direct

  let total_shed t =
    Array.fold_left
      (fun acc srv -> match srv with Some s -> acc + Sim.Server.shed s | None -> acc)
      0 t.servers

  let register t ~id handler =
    check_site t id "register";
    t.handlers.(id) <- Some handler

  let set_up t id up =
    check_site t id "set_up";
    t.up.(id) <- up;
    (* Fail-stop kills the site's processor with the site: everything
       queued (and the job in service) dies unserved. *)
    if not up then match t.servers.(id) with Some srv -> Sim.Server.clear srv | None -> ()

  let is_up t id =
    check_site t id "is_up";
    t.up.(id)

  let up_sites t =
    let rec collect i acc = if i < 0 then acc else collect (i - 1) (if t.up.(i) then i :: acc else acc) in
    collect (t.n_sites - 1) []

  let reachable t a b =
    check_site t a "reachable";
    check_site t b "reachable";
    t.group.(a) >= 0 && t.group.(a) = t.group.(b)

  let partition t groups =
    Array.fill t.group 0 t.n_sites (-1);
    List.iteri
      (fun gi members ->
        List.iter
          (fun s ->
            check_site t s "partition";
            t.group.(s) <- gi)
          members)
      groups

  let heal t = Array.fill t.group 0 t.n_sites 0

  (* Physical delivery: the receiver must be up both when the message is
     sent (a dead NIC receives nothing) and when it arrives (fail-stop: a
     message racing a failure is lost), and the route must exist at
     delivery.  The fault injector may drop the delivery, double it, or
     stretch its latency; with no injector installed the legacy single-copy
     path runs unchanged (the default-off no-op guarantee). *)
  let schedule_delivery t ~from ~dst payload ~extra =
    let delay = Util.Dist.sample t.latency t.rng +. extra in
    let handle_now () =
      match t.handlers.(dst) with
      | Some handler ->
          t.delivered <- t.delivered + 1;
          handler ~from payload
      | None -> ()
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun () ->
           if t.up.(dst) && reachable t from dst then
             match (t.service, t.servers.(dst)) with
             | None, _ | _, None -> handle_now ()
             | Some (model, rng), Some srv ->
                 (* The message reached the NIC; whether the processor gets
                    to it is the queue's call.  The cost draw happens at
                    arrival (deterministic in arrival order); a full queue
                    sheds the message — counted at the server — and the
                    sender's round times out as if it were lost.  The job
                    re-checks liveness at service time: a failure while the
                    message waited clears the queue, but belt-and-braces. *)
                 let cost = Service_model.cost_of model (P.category payload) rng in
                 ignore (Sim.Server.submit srv ~cost (fun () -> if t.up.(dst) then handle_now ()) : bool))
        : Sim.Engine.handle)

  (* Poison-frame quarantine, keyed (receiver, sender): [threshold]
     consecutive decode failures put the link in a [cooldown]-long window
     during which arriving frames are discarded {e undecoded} — a flooding
     corruptor cannot make the receiver burn a decode attempt per frame.
     A clean decode resets the strike count. *)
  let quarantined t ~dst ~from ~now =
    match Hashtbl.find_opt t.qstates (dst, from) with
    | Some q -> now < q.blocked_until
    | None -> false

  let clear_strikes t ~dst ~from =
    match Hashtbl.find_opt t.qstates (dst, from) with
    | Some q -> q.strikes <- 0
    | None -> ()

  let strike t ~dst ~from ~now =
    let q =
      match Hashtbl.find_opt t.qstates (dst, from) with
      | Some q -> q
      | None ->
          let q = { strikes = 0; blocked_until = neg_infinity } in
          Hashtbl.add t.qstates (dst, from) q;
          q
    in
    q.strikes <- q.strikes + 1;
    if q.strikes >= t.quarantine.threshold then begin
      q.strikes <- 0;
      q.blocked_until <- now +. t.quarantine.cooldown;
      t.quarantine_trips <- t.quarantine_trips + 1
    end

  (* Encoded delivery.  The frame crosses the wire as bytes; at ingress the
     injector may damage them, then quarantine is consulted, then the frame
     is decoded — in that order and in one step, so every corruption draw
     is immediately classified (rejected / quarantined / survived) and the
     conservation identity never has an in-flight remainder.  A rejected
     frame is redelivered from the sender's pristine copy while the budget
     lasts (the CRC-triggered link-layer retransmit real stacks do); a
     quarantined frame is not — the whole point is to stop spending on
     that link. *)
  let rec schedule_encoded t ~from ~dst ~cat ~frame ~extra ~budget =
    let delay = Util.Dist.sample t.latency t.rng +. extra in
    let ingest () =
      let bytes, mutated =
        match t.faults with
        | Some f -> Faults.corrupt f ~from ~dst frame
        | None -> (frame, false)
      in
      let now = Sim.Engine.now t.engine in
      if quarantined t ~dst ~from ~now then begin
        Traffic.record_quarantined t.traffic;
        if mutated then t.corrupt_quarantined <- t.corrupt_quarantined + 1
      end
      else
        match P.decode_frame bytes with
        | Ok payload -> (
            if mutated then t.corrupt_survived <- t.corrupt_survived + 1;
            clear_strikes t ~dst ~from;
            match t.handlers.(dst) with
            | Some handler ->
                t.delivered <- t.delivered + 1;
                handler ~from payload
            | None -> ())
        | Error reject ->
            Traffic.record_rejected t.traffic reject;
            if mutated then t.corrupt_rejected <- t.corrupt_rejected + 1;
            strike t ~dst ~from ~now;
            (match t.reject_hook with Some h -> h ~dst ~from reject | None -> ());
            if budget > 0 then begin
              t.retransmissions <- t.retransmissions + 1;
              schedule_encoded t ~from ~dst ~cat ~frame ~extra:0.0 ~budget:(budget - 1)
            end
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun () ->
           if t.up.(dst) && reachable t from dst then
             match (t.service, t.servers.(dst)) with
             | None, _ | _, None -> ingest ()
             | Some (model, rng), Some srv ->
                 let cost = Service_model.cost_of model cat rng in
                 ignore (Sim.Server.submit srv ~cost (fun () -> if t.up.(dst) then ingest ()) : bool))
        : Sim.Engine.handle)

  let deliver_encoded t ~from ~dst ~cat ~frame =
    if t.up.(dst) then begin
      match t.faults with
      | None -> schedule_encoded t ~from ~dst ~cat ~frame ~extra:0.0 ~budget:redelivery_budget
      | Some f ->
          List.iter
            (fun extra -> schedule_encoded t ~from ~dst ~cat ~frame ~extra ~budget:redelivery_budget)
            (Faults.plan f ~from ~dst)
    end

  let deliver t ~from ~dst payload =
    if t.up.(dst) then begin
      match t.faults with
      | None -> schedule_delivery t ~from ~dst payload ~extra:0.0
      | Some f ->
          List.iter (fun extra -> schedule_delivery t ~from ~dst payload ~extra) (Faults.plan f ~from ~dst)
    end

  let send t ~op ~from ~dst payload =
    check_site t from "send";
    check_site t dst "send";
    if from = dst then invalid_arg "Network.send: local access needs no transmission";
    if not t.up.(from) then invalid_arg "Network.send: sender is down";
    Traffic.record t.traffic ~bytes:(P.size payload) op (P.category payload) 1;
    if reachable t from dst then
      if t.encoded then
        deliver_encoded t ~from ~dst ~cat:(P.category payload) ~frame:(P.encode payload)
      else deliver t ~from ~dst payload

  let broadcast t ~op ~from payload =
    check_site t from "broadcast";
    if not t.up.(from) then invalid_arg "Network.broadcast: sender is down";
    let cost = match t.mode with Multicast -> 1 | Unicast -> t.n_sites - 1 in
    Traffic.record t.traffic ~bytes:(cost * P.size payload) op (P.category payload) cost;
    if t.encoded then begin
      (* encode once; per-destination damage works on its own copy *)
      let cat = P.category payload and frame = P.encode payload in
      for dst = 0 to t.n_sites - 1 do
        if dst <> from && reachable t from dst then deliver_encoded t ~from ~dst ~cat ~frame
      done
    end
    else
      for dst = 0 to t.n_sites - 1 do
        if dst <> from && reachable t from dst then deliver t ~from ~dst payload
      done

  let messages_delivered t = t.delivered
end
