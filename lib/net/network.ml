module type PAYLOAD = sig
  type t

  val category : t -> Message.category
  val size : t -> int
end

type mode = Multicast | Unicast

let mode_to_string = function Multicast -> "multicast" | Unicast -> "unicast"

module Make (P : PAYLOAD) = struct
  type t = {
    engine : Sim.Engine.t;
    mode : mode;
    latency : Util.Dist.t;
    rng : Util.Prng.t;
    traffic : Traffic.t;
    n_sites : int;
    up : bool array;
    handlers : (from:int -> P.t -> unit) option array;
    (* group.(i) = group.(j) && group.(i) >= 0 means i and j can talk;
       -1 means isolated.  No partition: all zero. *)
    group : int array;
    mutable delivered : int;
    mutable faults : Faults.t option;
    (* Service model: when installed, every delivery and client admission
       goes through the destination site's bounded queue.  [None] (the
       default) is the exact legacy zero-cost path — no queue, no extra
       rng draws, bit-identical behaviour. *)
    mutable service : (Service_model.t * Util.Prng.t) option;
    servers : Sim.Server.t option array;
  }

  let create ?faults engine ~mode ~latency ~rng ~n_sites =
    if n_sites <= 0 then invalid_arg "Network.create: need at least one site";
    {
      engine;
      mode;
      latency;
      rng;
      traffic = Traffic.create ();
      n_sites;
      up = Array.make n_sites true;
      handlers = Array.make n_sites None;
      group = Array.make n_sites 0;
      delivered = 0;
      faults;
      service = None;
      servers = Array.make n_sites None;
    }

  let engine t = t.engine
  let mode t = t.mode
  let n_sites t = t.n_sites
  let traffic t = t.traffic
  let faults t = t.faults
  let install_faults t f = t.faults <- Some f

  let check_site t id name =
    if id < 0 || id >= t.n_sites then invalid_arg (Printf.sprintf "Network.%s: bad site %d" name id)

  let install_service t model ~rng =
    (match Service_model.validate model with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Network.install_service: " ^ e));
    t.service <- Some (model, rng);
    for i = 0 to t.n_sites - 1 do
      t.servers.(i) <- Some (Sim.Server.create t.engine ~capacity:model.Service_model.queue_capacity)
    done

  let service t = Option.map fst t.service

  let server t id =
    check_site t id "server";
    t.servers.(id)

  let set_rate_factor t id factor =
    check_site t id "set_rate_factor";
    match t.servers.(id) with Some srv -> Sim.Server.set_rate_factor srv factor | None -> ()

  let flood_site t id ~count =
    check_site t id "flood_site";
    match (t.servers.(id), t.service) with
    | Some srv, Some (model, rng) ->
        Sim.Server.flood srv ~count ~cost:(Service_model.cost_of model Message.Block_request rng)
    | _ -> ()

  let submit_client t ~site work =
    check_site t site "submit_client";
    match (t.service, t.servers.(site)) with
    | Some (model, rng), Some srv ->
        let cost = Service_model.client_cost model rng in
        if Sim.Server.submit srv ~cost work then `Queued else `Shed
    | _ -> `Direct

  let total_shed t =
    Array.fold_left
      (fun acc srv -> match srv with Some s -> acc + Sim.Server.shed s | None -> acc)
      0 t.servers

  let register t ~id handler =
    check_site t id "register";
    t.handlers.(id) <- Some handler

  let set_up t id up =
    check_site t id "set_up";
    t.up.(id) <- up;
    (* Fail-stop kills the site's processor with the site: everything
       queued (and the job in service) dies unserved. *)
    if not up then match t.servers.(id) with Some srv -> Sim.Server.clear srv | None -> ()

  let is_up t id =
    check_site t id "is_up";
    t.up.(id)

  let up_sites t =
    let rec collect i acc = if i < 0 then acc else collect (i - 1) (if t.up.(i) then i :: acc else acc) in
    collect (t.n_sites - 1) []

  let reachable t a b =
    check_site t a "reachable";
    check_site t b "reachable";
    t.group.(a) >= 0 && t.group.(a) = t.group.(b)

  let partition t groups =
    Array.fill t.group 0 t.n_sites (-1);
    List.iteri
      (fun gi members ->
        List.iter
          (fun s ->
            check_site t s "partition";
            t.group.(s) <- gi)
          members)
      groups

  let heal t = Array.fill t.group 0 t.n_sites 0

  (* Physical delivery: the receiver must be up both when the message is
     sent (a dead NIC receives nothing) and when it arrives (fail-stop: a
     message racing a failure is lost), and the route must exist at
     delivery.  The fault injector may drop the delivery, double it, or
     stretch its latency; with no injector installed the legacy single-copy
     path runs unchanged (the default-off no-op guarantee). *)
  let schedule_delivery t ~from ~dst payload ~extra =
    let delay = Util.Dist.sample t.latency t.rng +. extra in
    let handle_now () =
      match t.handlers.(dst) with
      | Some handler ->
          t.delivered <- t.delivered + 1;
          handler ~from payload
      | None -> ()
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun () ->
           if t.up.(dst) && reachable t from dst then
             match (t.service, t.servers.(dst)) with
             | None, _ | _, None -> handle_now ()
             | Some (model, rng), Some srv ->
                 (* The message reached the NIC; whether the processor gets
                    to it is the queue's call.  The cost draw happens at
                    arrival (deterministic in arrival order); a full queue
                    sheds the message — counted at the server — and the
                    sender's round times out as if it were lost.  The job
                    re-checks liveness at service time: a failure while the
                    message waited clears the queue, but belt-and-braces. *)
                 let cost = Service_model.cost_of model (P.category payload) rng in
                 ignore (Sim.Server.submit srv ~cost (fun () -> if t.up.(dst) then handle_now ()) : bool))
        : Sim.Engine.handle)

  let deliver t ~from ~dst payload =
    if t.up.(dst) then begin
      match t.faults with
      | None -> schedule_delivery t ~from ~dst payload ~extra:0.0
      | Some f ->
          List.iter (fun extra -> schedule_delivery t ~from ~dst payload ~extra) (Faults.plan f ~from ~dst)
    end

  let send t ~op ~from ~dst payload =
    check_site t from "send";
    check_site t dst "send";
    if from = dst then invalid_arg "Network.send: local access needs no transmission";
    if not t.up.(from) then invalid_arg "Network.send: sender is down";
    Traffic.record t.traffic ~bytes:(P.size payload) op (P.category payload) 1;
    if reachable t from dst then deliver t ~from ~dst payload

  let broadcast t ~op ~from payload =
    check_site t from "broadcast";
    if not t.up.(from) then invalid_arg "Network.broadcast: sender is down";
    let cost = match t.mode with Multicast -> 1 | Unicast -> t.n_sites - 1 in
    Traffic.record t.traffic ~bytes:(cost * P.size payload) op (P.category payload) cost;
    for dst = 0 to t.n_sites - 1 do
      if dst <> from && reachable t from dst then deliver t ~from ~dst payload
    done

  let messages_delivered t = t.delivered
end
