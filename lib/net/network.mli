(** A simulated site-to-site network with fail-stop semantics.

    The network is a functor over the protocol's message type so that the
    replication layer keeps a typed interface while this module stays
    protocol-agnostic.  It models the two environments of Section 5:

    - {b Multicast}: one transmission reaches every destination, so a
      broadcast costs a single high-level transmission;
    - {b Unicast} ("unique addressing"): a broadcast costs one transmission
      per remote site, up or not — the sender cannot know.

    Delivery is reliable and FIFO-per-latency-draw by default, matching the
    paper's "reliable message delivery" assumption; messages to failed sites
    vanish (fail-stop receivers), and optional partitions let adversarial
    tests exercise the one scenario where available copy is unsafe.  An
    optional {!Faults} injector relaxes the reliability assumption per link
    (drop / duplicate / reorder / extra delay) for robustness studies. *)

module type PAYLOAD = sig
  type t

  val category : t -> Message.category
  (** Category under which a payload's transmission is accounted. *)

  val size : t -> int
  (** Payload size in bytes, for the byte-level accounting of
      {!Traffic}.  An estimate is fine; only relative magnitudes matter to
      the Section 5 size remark. *)

  val encode : t -> Bytes.t
  (** The payload's wire frame, for encoded delivery.  Must round-trip:
      [decode_frame (encode p)] is [Ok p]. *)

  val decode_frame : Bytes.t -> (t, Message.reject) result
  (** Decode one wire frame, mapping every decoder error onto a
      {!Message.reject} class.  Must {e never} raise — arbitrary bytes
      reach it once byte-level fault injection is on. *)
end

type mode = Multicast | Unicast

val mode_to_string : mode -> string

type quarantine = { threshold : int; cooldown : float }
(** Poison-frame quarantine policy: after [threshold] consecutive decode
    failures from one sender, the receiver discards that link's frames
    {e undecoded} for [cooldown] simulated seconds. *)

val default_quarantine : quarantine
(** threshold 3, cooldown 20.0. *)

val validate_quarantine : quarantine -> (quarantine, string) result

val redelivery_budget : int
(** Link-layer redelivery budget of encoded mode: how many times a
    CRC-rejected frame is re-sent from the sender's pristine copy (fresh
    latency and corruption draws) before the loss is left to the retry
    layer's timeouts.  Ambient corruption at per-frame rate [p] thus has
    residual loss [p^(budget+1)]; a persistent ([p = 1]) corruptor defeats
    the budget by design and is the circuit breaker's job. *)

module Make (P : PAYLOAD) : sig
  type t

  val create :
    ?faults:Faults.t ->
    Sim.Engine.t ->
    mode:mode ->
    latency:Util.Dist.t ->
    rng:Util.Prng.t ->
    n_sites:int ->
    t
  (** A network over sites [0 .. n_sites-1], all initially up, fully
      connected, with its own fresh {!Traffic.t}.  With no [faults] (the
      default) delivery is reliable, exactly as the paper assumes. *)

  val engine : t -> Sim.Engine.t
  val mode : t -> mode
  val n_sites : t -> int
  val traffic : t -> Traffic.t

  val faults : t -> Faults.t option
  (** The installed fault injector, if any (for counter reporting). *)

  val install_faults : t -> Faults.t -> unit
  (** Install (or replace) the fault injector; affects deliveries scheduled
      from now on.  Transmission accounting is never affected — Section 5
      charges the send, not the arrival. *)

  val set_encoded : t -> bool -> unit
  (** Toggle encoded delivery.  When on, every payload crosses the wire as
      its {!PAYLOAD.encode} frame and the receiver re-decodes it through
      the hardened ingress: injector byte damage, then quarantine, then
      {!PAYLOAD.decode_frame} — a rejected frame is counted per class in
      {!Traffic}, reported to the reject hook, redelivered while the
      {!redelivery_budget} lasts, and otherwise lost (the sender's round
      recovers by timeout).  Off (the default) is the legacy in-heap path:
      no encode, no decode, no extra rng draws — bit-identical.  With no
      corruption configured, encoded mode is also draw-for-draw identical
      to the legacy path (only CPU cost differs). *)

  val encoded : t -> bool

  val set_quarantine : t -> quarantine -> unit
  (** Replace the quarantine policy (validated; raises [Invalid_argument]
      on a bad one).  Affects strikes counted from now on. *)

  val quarantine_policy : t -> quarantine

  val set_reject_hook : t -> (dst:int -> from:int -> Message.reject -> unit) -> unit
  (** Called on every rejected frame with the receiver and claimed sender —
      the runtime feeds these into the receiver's per-peer circuit breaker
      so a persistently corrupting link trips open like a dead peer. *)

  (** {2 Ingress counters (encoded mode)} *)

  val frames_retransmitted : t -> int
  (** Link-layer redeliveries triggered by rejected frames. *)

  val quarantine_trips : t -> int
  (** Times some (receiver, sender) link entered quarantine. *)

  val corrupt_rejected : t -> int
  (** Corrupted deliveries the decoder caught. *)

  val corrupt_quarantined : t -> int
  (** Corrupted deliveries discarded undecoded by quarantine. *)

  val corrupt_survived : t -> int
  (** Corrupted deliveries the decoder nevertheless accepted (a splice
      that reproduced a valid frame); the decoded payload is a valid
      frame some site really sent, never garbage. *)

  val corruption_conserved : t -> bool
  (** The ingress conservation identity: every corruption the injector
      counted is rejected, quarantined or survived — nothing silently
      uncounted.  Holds at every instant, not only after a drain, because
      damage and classification happen in one ingress step. *)

  val install_service : t -> Service_model.t -> rng:Util.Prng.t -> unit
  (** Put a bounded single-server queue ({!Sim.Server}) in front of every
      site: deliveries then occupy the destination's processor for a draw
      from the payload category's service distribution, and a full queue
      sheds the message (the sender sees silence, as with loss).  [rng]
      must be a stream of its own — service sampling never touches the
      latency stream, so enabling the model leaves message timing draws
      unchanged.  Without this call the legacy instant-service path runs
      byte-identically. *)

  val service : t -> Service_model.t option

  val server : t -> int -> Sim.Server.t option
  (** Site [id]'s work queue, when a service model is installed — for
      per-site depth/latency/shed reporting and chaos instrumentation. *)

  val set_rate_factor : t -> int -> float -> unit
  (** Degrade (or heal) one site's processor: multiplies every service
      time drawn from now on (10.0 = the canonical gray failure).  No-op
      without a service model. *)

  val flood_site : t -> int -> count:int -> unit
  (** Stuff [count] no-op jobs into a site's queue (the [queue-flood]
      chaos event); overflow sheds.  No-op without a service model. *)

  val submit_client : t -> site:int -> (unit -> unit) -> [ `Direct | `Queued | `Shed ]
  (** Admit one client operation at a site.  [`Direct]: no service model —
      the caller must run the work itself, synchronously (legacy path).
      [`Queued]: accepted; the work fires when the processor reaches it.
      [`Shed]: queue full, work refused and never run. *)

  val total_shed : t -> int
  (** Jobs shed across all site queues (messages and client admissions). *)

  val register : t -> id:int -> (from:int -> P.t -> unit) -> unit
  (** [register t ~id handler] installs the receive handler of site [id];
      replaces any previous handler. *)

  val set_up : t -> int -> bool -> unit
  (** Mark a site up or down.  A down site receives nothing: messages
      addressed to it while down never materialise, and messages already in
      flight when it goes down are dropped at delivery time. *)

  val is_up : t -> int -> bool

  val up_sites : t -> int list
  (** Sites currently up, ascending. *)

  val send : t -> op:Message.operation -> from:int -> dst:int -> P.t -> unit
  (** One point-to-point transmission (always accounted).  Raises
      [Invalid_argument] if the sender is down — protocols must not speak
      for dead sites — or if [from = dst]; local work is free. *)

  val broadcast : t -> op:Message.operation -> from:int -> P.t -> unit
  (** Transmission to every other site: accounted as 1 (multicast) or
      [n_sites - 1] (unicast). *)

  val partition : t -> int list list -> unit
  (** [partition t groups] splits connectivity: two sites communicate iff
      some group contains both.  Sites absent from every group are isolated.
      Replaces any previous partition. *)

  val heal : t -> unit
  (** Remove any partition; full connectivity again. *)

  val reachable : t -> int -> int -> bool
  (** Whether a message sent now from the first site can reach the second
      (ignores up/down state; pure connectivity). *)

  val messages_delivered : t -> int
  (** Messages actually handed to a receiver (for tests: delivered <= sent
      destinations). *)
end
