(** Per-site service-time profile: what each kind of work costs a site's
    processor, and how much work may wait.

    The paper's sites are infinitely fast — a vote or transfer is served the
    instant it arrives.  Installing a service model puts a bounded
    single-server queue ({!Sim.Server}) in front of every site so overload
    and gray failure (slow, not dead) become simulable: each delivered
    message occupies the site for a draw from its category's distribution,
    and client operations entering the cluster pay the [client] cost. *)

type t = {
  queue_capacity : int;  (** waiting-room size of each site's queue *)
  base : Util.Dist.t;  (** service time of categories not listed below *)
  per_category : (Message.category * Util.Dist.t) list;
      (** overrides by message kind; first match wins *)
  client : Util.Dist.t;  (** cost of admitting one client operation *)
}

val default : t
(** Calibrated against the synchronous-write measurements of the
    stable-memory literature (see DESIGN.md §4h): applying an update —
    a journaled sync write — is Erlang-2 with mean 0.25 (half the default
    network hop, CV below one); votes and acks are cheap metadata; block
    transfers cost 0.12; capacity 64. *)

val cost_of : t -> Message.category -> Util.Prng.t -> float
(** Sample the service time of handling one message of the category. *)

val client_cost : t -> Util.Prng.t -> float
(** Sample the admission cost of one client operation. *)

val mean_client_cost : t -> float
(** Analytic mean of the client cost — the saturation arrival rate of a
    site is its reciprocal (open-loop benchmarks size load against it). *)

val validate : t -> (t, string) result
val pp : Format.formatter -> t -> unit
