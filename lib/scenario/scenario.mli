(** A little language for replication scenarios.

    Distributed-systems bugs live in specific interleavings of failures,
    repairs and operations; this module lets those interleavings be written
    down as plain text, executed deterministically against a cluster, and
    asserted on — the test suite ships a corpus of them.

    Format: one directive or event per line; [#] starts a comment.

    {v
    # header directives (before any event)
    scheme nac              # voting | ac | nac | dynamic
    sites 3
    blocks 8                # optional, default 8
    seed 42                 # optional
    latency 0.5             # optional constant one-hop latency
    witnesses 2             # optional, voting only
    track-liveness true     # optional, AC only
    horizon 200             # optional; default last event time + 100
    fault-drop 0.05         # optional message-fault knobs (default 0):
    fault-duplicate 0.01    #   per-delivery probabilities...
    fault-reorder 0.1
    fault-jitter 2.0        #   ...extra delay ~ Uniform(0, jitter) on reorder
    fault-delay 0.25        #   deterministic extra latency per delivery
    service-model true      # optional: bounded per-site work queues with
                            #   the default service-time profile (needed
                            #   for slow-site / queue-flood to take effect)

    # timed events
    @10   fail 1
    @11   write 0 3 hello         # site, block, payload token
    @12   expect-read 0 3 hello   # must succeed with this payload
    @13   expect-write-fail 1 0   # site is down: must be refused
    @20   repair 1
    @25   partition 0 1 | 2
    @30   heal
    @40   crash-torn 1              # fail site 1, tearing its last write
                                    # (the recovery scrub replays it)
    @45   bitrot 2 3                # silently rot site 2's copy of block 3
    @50   disk-replace 1            # swap site 1's disk for a blank one
                                    # (fails the site; repair rebuilds it)
    @60   slow-site 1 10            # gray failure: site 1 serves 10x slow
    @70   slow-site 1 1             # ...and recovers to full speed
    @75   burst 0 30                # 30 back-to-back client reads at site 0
    @80   queue-flood 2 48          # 48 junk jobs into site 2's work queue
    @90   expect-state 1 available
    @95   expect-available true
    @99   expect-consistent       # available stores agree
    @100  expect-inconsistent     # ...or assert a documented failure mode
    @101  check-invariants        # full Check.Invariant scan (run at a
                                  # quiescent point; every violation is
                                  # reported as an expectation failure)
    v} *)

type t
(** A parsed scenario. *)

type outcome = {
  passed : bool;
  failures : string list;  (** one line per violated expectation *)
  events_run : int;
  cluster : Blockrep.Cluster.t;  (** final state, for further inspection *)
}

val parse : string -> (t, string) result
(** Parse scenario text; [Error] pinpoints the offending line. *)

val parse_file : string -> (t, string) result

val run : t -> outcome
(** Build the cluster, schedule every event, run the engine to the horizon
    and collect expectation failures. *)

val check : string -> (unit, string list) result
(** [parse] + [run] in one step: [Ok ()] when every expectation held,
    [Error failures] (or a singleton parse error) otherwise. *)
