type action =
  | Fail of int
  | Repair of int
  | Partition of int list list
  | Heal
  | Crash_torn of int
  | Bitrot of int * int
  | Disk_replace of int
  | Slow_site of int * float
  | Burst of int * int
  | Queue_flood of int * int
  | Write of int * int * string
  | Read of int * int
  | Expect_read of int * int * string
  | Expect_read_fail of int * int
  | Expect_write_fail of int * int
  | Expect_state of int * Blockrep.Types.site_state
  | Expect_available of bool
  | Expect_consistent
  | Expect_inconsistent
  | Check_invariants

type event = { time : float; line : int; action : action }

type header = {
  mutable scheme : Blockrep.Types.scheme option;
  mutable sites : int option;
  mutable blocks : int;
  mutable seed : int;
  mutable latency : float option;
  mutable witnesses : int list;
  mutable track_liveness : bool;
  mutable horizon : float option;
  mutable faults : Net.Faults.profile;
  mutable service : bool;
}

type t = { header : header; events : event list }

let state_of_string = function
  | "failed" -> Some Blockrep.Types.Failed
  | "comatose" -> Some Blockrep.Types.Comatose
  | "available" -> Some Blockrep.Types.Available
  | _ -> None

type outcome = {
  passed : bool;
  failures : string list;
  events_run : int;
  cluster : Blockrep.Cluster.t;
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let fresh_header () =
  {
    scheme = None;
    sites = None;
    blocks = 8;
    seed = 42;
    latency = None;
    witnesses = [];
    track_liveness = false;
    horizon = None;
    faults = Net.Faults.pristine;
    service = false;
  }

let scheme_of_string = function
  | "voting" -> Some Blockrep.Types.Voting
  | "ac" | "available-copy" -> Some Blockrep.Types.Available_copy
  | "nac" | "naive" | "naive-available-copy" -> Some Blockrep.Types.Naive_available_copy
  | "dynamic" | "dynamic-voting" -> Some Blockrep.Types.Dynamic_voting
  | _ -> None

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let parse_int ~line what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: bad %s %S" line what s)

let parse_float ~line what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: bad %s %S" line what s)

let ( let* ) = Result.bind

let parse_groups ~line words =
  (* partition syntax: site ids separated by spaces, groups by '|'. *)
  let rec go current acc = function
    | [] -> Ok (List.rev (List.rev current :: acc))
    | "|" :: rest -> go [] (List.rev current :: acc) rest
    | w :: rest ->
        let* site = parse_int ~line "site" w in
        go (site :: current) acc rest
  in
  go [] [] words

let parse_action ~line words =
  match words with
  | [ "fail"; s ] ->
      let* s = parse_int ~line "site" s in
      Ok (Fail s)
  | [ "repair"; s ] ->
      let* s = parse_int ~line "site" s in
      Ok (Repair s)
  | "partition" :: rest ->
      let* groups = parse_groups ~line rest in
      Ok (Partition groups)
  | [ "heal" ] -> Ok Heal
  | [ "crash-torn"; s ] ->
      let* s = parse_int ~line "site" s in
      Ok (Crash_torn s)
  | [ "bitrot"; s; b ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Bitrot (s, b))
  | [ "disk-replace"; s ] ->
      let* s = parse_int ~line "site" s in
      Ok (Disk_replace s)
  | [ "slow-site"; s; f ] ->
      let* s = parse_int ~line "site" s in
      let* f = parse_float ~line "rate factor" f in
      Ok (Slow_site (s, f))
  | [ "burst"; s; n ] ->
      let* s = parse_int ~line "site" s in
      let* n = parse_int ~line "burst size" n in
      Ok (Burst (s, n))
  | [ "queue-flood"; s; n ] ->
      let* s = parse_int ~line "site" s in
      let* n = parse_int ~line "flood count" n in
      Ok (Queue_flood (s, n))
  | [ "write"; s; b; payload ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Write (s, b, payload))
  | [ "read"; s; b ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Read (s, b))
  | [ "expect-read"; s; b; payload ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Expect_read (s, b, payload))
  | [ "expect-read-fail"; s; b ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Expect_read_fail (s, b))
  | [ "expect-write-fail"; s; b ] ->
      let* s = parse_int ~line "site" s in
      let* b = parse_int ~line "block" b in
      Ok (Expect_write_fail (s, b))
  | [ "expect-state"; s; state ] -> (
      let* s = parse_int ~line "site" s in
      match state_of_string state with
      | Some st -> Ok (Expect_state (s, st))
      | None -> Error (Printf.sprintf "line %d: unknown state %S" line state))
  | [ "expect-available"; b ] -> (
      match bool_of_string_opt b with
      | Some b -> Ok (Expect_available b)
      | None -> Error (Printf.sprintf "line %d: expect-available wants true/false" line))
  | [ "expect-consistent" ] -> Ok Expect_consistent
  | [ "expect-inconsistent" ] -> Ok Expect_inconsistent
  | [ "check-invariants" ] -> Ok Check_invariants
  | cmd :: _ -> Error (Printf.sprintf "line %d: unknown command %S" line cmd)
  | [] -> Error (Printf.sprintf "line %d: empty event" line)

let parse_header_line header ~line words =
  match words with
  | [ "scheme"; s ] -> (
      match scheme_of_string s with
      | Some scheme ->
          header.scheme <- Some scheme;
          Ok ()
      | None -> Error (Printf.sprintf "line %d: unknown scheme %S" line s))
  | [ "sites"; n ] ->
      let* n = parse_int ~line "site count" n in
      header.sites <- Some n;
      Ok ()
  | [ "blocks"; n ] ->
      let* n = parse_int ~line "block count" n in
      header.blocks <- n;
      Ok ()
  | [ "seed"; n ] ->
      let* n = parse_int ~line "seed" n in
      header.seed <- n;
      Ok ()
  | [ "latency"; x ] ->
      let* x = parse_float ~line "latency" x in
      header.latency <- Some x;
      Ok ()
  | "witnesses" :: rest ->
      let* ws =
        List.fold_left
          (fun acc w ->
            let* acc = acc in
            let* v = parse_int ~line "witness" w in
            Ok (v :: acc))
          (Ok []) rest
      in
      header.witnesses <- List.rev ws;
      Ok ()
  | [ "track-liveness"; b ] -> (
      match bool_of_string_opt b with
      | Some b ->
          header.track_liveness <- b;
          Ok ()
      | None -> Error (Printf.sprintf "line %d: track-liveness wants true/false" line))
  | [ "horizon"; x ] ->
      let* x = parse_float ~line "horizon" x in
      header.horizon <- Some x;
      Ok ()
  | [ "fault-drop"; x ] ->
      let* x = parse_float ~line "fault-drop" x in
      header.faults <- { header.faults with Net.Faults.drop = x };
      Ok ()
  | [ "fault-duplicate"; x ] ->
      let* x = parse_float ~line "fault-duplicate" x in
      header.faults <- { header.faults with Net.Faults.duplicate = x };
      Ok ()
  | [ "fault-reorder"; x ] ->
      let* x = parse_float ~line "fault-reorder" x in
      header.faults <- { header.faults with Net.Faults.reorder = x };
      Ok ()
  | [ "fault-jitter"; x ] ->
      let* x = parse_float ~line "fault-jitter" x in
      header.faults <- { header.faults with Net.Faults.jitter = Util.Dist.Uniform (0.0, x) };
      Ok ()
  | [ "fault-delay"; x ] ->
      let* x = parse_float ~line "fault-delay" x in
      header.faults <- { header.faults with Net.Faults.extra_delay = x };
      Ok ()
  | [ "service-model"; b ] -> (
      match bool_of_string_opt b with
      | Some b ->
          header.service <- b;
          Ok ()
      | None -> Error (Printf.sprintf "line %d: service-model wants true/false" line))
  | key :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" line key)
  | [] -> Ok ()

let parse text =
  let header = fresh_header () in
  let lines = String.split_on_char '\n' text in
  let rec go line_no events = function
    | [] -> Ok (List.rev events)
    | raw :: rest -> (
        let words = split_words (strip_comment raw) in
        match words with
        | [] -> go (line_no + 1) events rest
        | at :: cmd when String.length at > 0 && at.[0] = '@' ->
            let* time = parse_float ~line:line_no "time" (String.sub at 1 (String.length at - 1)) in
            let* action = parse_action ~line:line_no cmd in
            go (line_no + 1) ({ time; line = line_no; action } :: events) rest
        | directive -> (
            match parse_header_line header ~line:line_no directive with
            | Ok () -> go (line_no + 1) events rest
            | Error _ as err -> err))
  in
  let* events = go 1 [] lines in
  match (header.scheme, header.sites) with
  | None, _ -> Error "missing 'scheme' directive"
  | _, None -> Error "missing 'sites' directive"
  | Some _, Some _ -> (
      match Net.Faults.validate_profile header.faults with
      | Error e -> Error ("bad fault directives: " ^ e)
      | Ok _ -> Ok { header; events })

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      parse text

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let payload_matches expected block =
  let s = Blockdev.Block.to_string block in
  String.length expected <= String.length s && String.sub s 0 (String.length expected) = expected

let run t =
  let h = t.header in
  let scheme, n_sites =
    match (h.scheme, h.sites) with
    | Some scheme, Some sites -> (scheme, sites)
    | None, _ | _, None ->
        (* parse rejects scenarios without these directives. *)
        invalid_arg "Scenario.run: header lacks scheme or sites"
  in
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:h.blocks
      ?latency:(Option.map (fun x -> Util.Dist.Constant x) h.latency)
      ~witnesses:h.witnesses ~track_liveness:h.track_liveness ~seed:h.seed
      ~fault_profile:h.faults
      ?service:(if h.service then Some Net.Service_model.default else None)
      ()
  in
  let cluster = Blockrep.Cluster.create config in
  let engine = Blockrep.Cluster.engine cluster in
  let failures = ref [] in
  let events_run = ref 0 in
  let fail_line line fmt =
    Printf.ksprintf (fun msg -> failures := Printf.sprintf "line %d: %s" line msg :: !failures) fmt
  in
  let execute ev =
    incr events_run;
    let line = ev.line in
    match ev.action with
    | Fail s -> Blockrep.Cluster.fail_site cluster s
    | Repair s -> Blockrep.Cluster.repair_site cluster s
    | Partition groups -> Blockrep.Cluster.partition cluster groups
    | Heal -> Blockrep.Cluster.heal cluster
    | Crash_torn s ->
        (* Arm the tear, then crash: the site's most recent journaled write
           is left garbled on the platter for the recovery scrub to replay. *)
        Blockrep.Cluster.arm_torn_write cluster s;
        Blockrep.Cluster.fail_site cluster s
    | Bitrot (site, block) -> Blockrep.Cluster.inject_bitrot cluster ~site ~block
    | Disk_replace s -> Blockrep.Cluster.replace_disk cluster s
    | Slow_site (s, f) -> Blockrep.Cluster.set_rate_factor cluster s f
    | Burst (site, n) ->
        (* Arrival pressure: [n] back-to-back client reads of block 0 at
           the site, answers discarded — with a service model installed
           they pile into the site's entry queue. *)
        for _ = 1 to n do
          Blockrep.Cluster.read cluster ~site ~block:0 (fun _ -> ())
        done
    | Queue_flood (s, n) -> Blockrep.Cluster.flood_site cluster s ~count:n
    | Write (site, block, payload) ->
        Blockrep.Cluster.write cluster ~site ~block (Blockdev.Block.of_string payload) (function
          | Ok _ -> ()
          | Error e ->
              fail_line line "write %d@%d failed: %s" block site
                (Blockrep.Types.failure_reason_to_string e))
    | Read (site, block) -> Blockrep.Cluster.read cluster ~site ~block (fun _ -> ())
    | Expect_read (site, block, payload) ->
        Blockrep.Cluster.read cluster ~site ~block (function
          | Ok (b, _) ->
              if not (payload_matches payload b) then
                fail_line line "read %d@%d returned %S, wanted %S" block site
                  (String.trim (String.sub (Blockdev.Block.to_string b) 0 24))
                  payload
          | Error e ->
              fail_line line "read %d@%d refused: %s" block site
                (Blockrep.Types.failure_reason_to_string e))
    | Expect_read_fail (site, block) ->
        Blockrep.Cluster.read cluster ~site ~block (function
          | Ok _ -> fail_line line "read %d@%d unexpectedly succeeded" block site
          | Error _ -> ())
    | Expect_write_fail (site, block) ->
        Blockrep.Cluster.write cluster ~site ~block (Blockdev.Block.of_string "must-fail") (function
          | Ok _ -> fail_line line "write %d@%d unexpectedly succeeded" block site
          | Error _ -> ())
    | Expect_state (site, state) ->
        let actual = Blockrep.Cluster.site_state cluster site in
        if actual <> state then
          fail_line line "site %d is %s, expected %s" site
            (Blockrep.Types.site_state_to_string actual)
            (Blockrep.Types.site_state_to_string state)
    | Expect_available b ->
        let actual = Blockrep.Cluster.system_available cluster in
        if actual <> b then fail_line line "system availability is %b, expected %b" actual b
    | Expect_consistent ->
        if not (Blockrep.Cluster.consistent_available_stores cluster) then
          fail_line line "available stores disagree"
    | Expect_inconsistent ->
        (* For documenting failure modes (e.g. available copy under a
           partition): the scenario asserts the divergence happens. *)
        if Blockrep.Cluster.consistent_available_stores cluster then
          fail_line line "stores unexpectedly consistent"
    | Check_invariants ->
        (* The full per-scheme invariant scan of the checking subsystem;
           meaningful at quiescent points (give in-flight messages time to
           land before scheduling it). *)
        List.iter
          (fun v -> fail_line line "invariant violated: %s" (Check.Violation.to_string v))
          (Check.Invariant.scan cluster)
  in
  List.iter
    (fun ev -> ignore (Sim.Engine.schedule_at engine ~time:ev.time (fun () -> execute ev) : Sim.Engine.handle))
    t.events;
  let horizon =
    match h.horizon with
    | Some x -> x
    | None -> List.fold_left (fun acc ev -> Float.max acc ev.time) 0.0 t.events +. 100.0
  in
  Blockrep.Cluster.run_until cluster horizon;
  { passed = !failures = []; failures = List.rev !failures; events_run = !events_run; cluster }

let check text =
  match parse text with
  | Error e -> Error [ e ]
  | Ok t ->
      let outcome = run t in
      if outcome.passed then Ok () else Error outcome.failures
