(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   The digest is kept as a non-negative OCaml [int] (fits in 32 bits) so
   it can be stored in plain int arrays and compared with [=] without
   boxing.  The table is the one audited shared-global suppression in
   the codec library; everything else the domain-safety analyzer
   verifies outright (see DESIGN.md section 4k). *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
    done;
    t.(n) <- !c
  done;
  t
[@@lint.allow "shared-global"
  "write-once lookup table, fully initialised at module load before any domain can exist; \
   every later access is a read, so sharing it cannot race or reorder"]

let update crc byte =
  table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let digest_sub buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc.digest_sub: region out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get buf i))
  done;
  !crc lxor 0xFFFFFFFF

let digest_bytes buf = digest_sub buf ~pos:0 ~len:(Bytes.length buf)

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)
