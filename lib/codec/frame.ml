(* Length-prefixed, checksummed framing.

   Layout (9-byte header, little-endian fixed-width fields):

     offset 0      1            5           9
            [magic][payload len][crc32     ][payload bytes ...]
             u8     u32le        u32le

   The CRC covers exactly the payload region.  [decode] validates
   magic, declared length against the buffer, and CRC *before* handing
   the payload to the caller, so payload decoders only ever see
   checksummed bytes.  Encoding is two passes over the payload emitter
   (count, then write into one exactly-sized buffer) — no intermediate
   allocation. *)

let magic = 0xB5
let header_bytes = 9
let crc_offset = 5

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic of int
  | Trailing of int
  | Crc_mismatch of { stored : int; computed : int }

let pp_error ppf = function
  | Truncated { expected; got } ->
      Format.fprintf ppf "truncated frame: need %d bytes, have %d" expected got
  | Bad_magic b -> Format.fprintf ppf "bad frame magic 0x%02x" b
  | Trailing n -> Format.fprintf ppf "%d trailing bytes after frame" n
  | Crc_mismatch { stored; computed } ->
      Format.fprintf ppf "crc mismatch: stored 0x%08x, computed 0x%08x" stored
        computed

let encoded_size ~payload =
  let w = Buf.counter () in
  payload w;
  header_bytes + Buf.length w

let encode_into w ~payload =
  let start = Buf.length w in
  Buf.u8 w magic;
  Buf.u32 w 0 (* length, patched below *);
  Buf.u32 w 0 (* crc, patched below *);
  payload w;
  let plen = Buf.length w - start - header_bytes in
  Buf.patch_u32 w ~pos:(start + 1) plen;
  let crc = Crc.digest_sub (Buf.contents w) ~pos:(start + header_bytes) ~len:plen in
  Buf.patch_u32 w ~pos:(start + crc_offset) crc

let encode ~payload =
  let w = Buf.counter () in
  payload w;
  let plen = Buf.length w in
  let out = Buf.writer (header_bytes + plen) in
  Buf.u8 out magic;
  Buf.u32 out plen;
  Buf.u32 out 0;
  payload out;
  let buf = Buf.contents out in
  let crc = Crc.digest_sub buf ~pos:header_bytes ~len:plen in
  Bytes.unsafe_set buf crc_offset (Char.unsafe_chr (crc land 0xff));
  Bytes.unsafe_set buf (crc_offset + 1) (Char.unsafe_chr ((crc lsr 8) land 0xff));
  Bytes.unsafe_set buf (crc_offset + 2) (Char.unsafe_chr ((crc lsr 16) land 0xff));
  Bytes.unsafe_set buf (crc_offset + 3) (Char.unsafe_chr ((crc lsr 24) land 0xff));
  buf

let decode_sub buf ~pos ~len =
  if len < header_bytes then
    Error (Truncated { expected = header_bytes; got = len })
  else begin
    let hdr = Buf.reader buf ~pos ~len:header_bytes in
    let m = Buf.r_u8 hdr in
    if m <> magic then Error (Bad_magic m)
    else begin
      let plen = Buf.r_u32 hdr in
      let stored = Buf.r_u32 hdr in
      let total = header_bytes + plen in
      if len < total then Error (Truncated { expected = total; got = len })
      else if len > total then Error (Trailing (len - total))
      else begin
        let computed = Crc.digest_sub buf ~pos:(pos + header_bytes) ~len:plen in
        if computed <> stored then Error (Crc_mismatch { stored; computed })
        else Ok (Buf.reader buf ~pos:(pos + header_bytes) ~len:plen)
      end
    end
  end

let decode buf = decode_sub buf ~pos:0 ~len:(Bytes.length buf)
