(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320).

    Digests are returned as non-negative ints in [0, 0xFFFFFFFF] so they
    can live in int arrays and be compared structurally.  Any single-bit
    flip in the digested region changes the digest, which is what the
    byte-accurate bitrot injection in [Blockdev.Durable_store] relies
    on. *)

val update : int -> int -> int
(** [update crc byte] folds one byte (0–255) into a running raw CRC
    state.  Callers composing digests incrementally must start from
    [0xFFFFFFFF] and finish with [lxor 0xFFFFFFFF]; prefer the digest
    functions below. *)

val digest_sub : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [buf] starting at [pos].  Raises
    [Invalid_argument] if the region is out of bounds. *)

val digest_bytes : Bytes.t -> int
(** CRC-32 of the whole buffer. *)

val digest_string : string -> int
(** CRC-32 of the whole string. *)
