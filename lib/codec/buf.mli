(** Cursor writer/reader over [Bytes].

    The writer has two modes with one field-emission API: a counting
    pass ([counter]) that only measures, and a writing pass ([writer])
    that fills a buffer.  Encoders written once against [w] therefore
    serve both a measured, allocation-free [size] and a single-alloc
    [encode].  Counters carry no shared state, so sizing is domain-safe
    for sharded benches.

    Readers raise {!Short} / {!Bad} on malformed input; these are meant
    to be caught at the frame-decode boundary and turned into typed
    errors — public decoders built on this module must never let them
    escape. *)

type w

val counter : unit -> w
(** Counting-mode writer: advances length without touching memory. *)

val writer : int -> w
(** [writer capacity] is a writing-mode writer.  The buffer grows if
    exceeded, but sizing with a counting pass first avoids any growth. *)

val length : w -> int
(** Bytes emitted (or counted) so far. *)

val contents : w -> Bytes.t
(** Copy of the emitted prefix.  Writing-mode only use. *)

val u8 : w -> int -> unit
val u32 : w -> int -> unit
(** Fixed-width little-endian, value truncated to 8/32 bits. *)

val varint : w -> int -> unit
(** LEB128 varint over the int's 63-bit representation (logical shifts:
    negative ints round-trip as 9-byte encodings). *)

val raw_string : w -> string -> unit
(** Bytes with no length prefix (fixed-size payloads, e.g. blocks). *)

val string : w -> string -> unit
(** Varint length prefix followed by the bytes. *)

val patch_u32 : w -> pos:int -> int -> unit
(** Overwrite 4 already-emitted bytes (e.g. a checksum slot).  Raises
    [Invalid_argument] on a counting writer or out-of-range position. *)

exception Short
(** Reader ran out of bytes. *)

exception Bad of string
(** Structurally invalid input (overlong varint, negative length). *)

type r

val reader : Bytes.t -> pos:int -> len:int -> r
val remaining : r -> int
val at_end : r -> bool

val r_u8 : r -> int
val r_u32 : r -> int
val r_varint : r -> int
val r_raw_string : r -> int -> string
val r_string : r -> string
