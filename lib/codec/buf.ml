(* Cursor-style writer/reader over [Bytes].

   The writer runs in one of two modes sharing the same field-emission
   code: a *counting* pass that only advances the length (no buffer, no
   allocation) and a *writing* pass that blits into a caller-sized
   buffer.  Encoders are written once against [w] and used for both
   [size] (measured, allocation-free) and [encode]; every counter is
   allocated fresh by its caller and this module holds no top-level
   state, so sizing is safe to call concurrently from sharded bench
   lanes.  That claim is no longer a comment: blockrep-lint's
   domain-safety passes (shared-global, domain-capture) run over the
   whole codec library and test_lint asserts they stay silent here.

   The reader raises the local exceptions [Short]/[Bad] on malformed
   input; [Frame]/callers catch them at the decode boundary and return
   typed errors, so the public decode API never raises. *)

type w = { mutable buf : Bytes.t; mutable len : int; write : bool }

let counter () = { buf = Bytes.empty; len = 0; write = false }

let writer capacity =
  if capacity < 0 then invalid_arg "Buf.writer: negative capacity";
  { buf = Bytes.create capacity; len = 0; write = true }

let length w = w.len
let contents w = Bytes.sub w.buf 0 w.len

let ensure w n =
  if w.write && w.len + n > Bytes.length w.buf then begin
    let cap = max (w.len + n) (max 64 (2 * Bytes.length w.buf)) in
    let buf = Bytes.create cap in
    Bytes.blit w.buf 0 buf 0 w.len;
    w.buf <- buf
  end

let u8 w v =
  ensure w 1;
  if w.write then Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let u32 w v =
  ensure w 4;
  if w.write then begin
    Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set w.buf (w.len + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set w.buf (w.len + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set w.buf (w.len + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))
  end;
  w.len <- w.len + 4

(* LEB128-style varint over the int's 63-bit representation: logical
   shifts, so negative ints round-trip (as 9-byte encodings).  Protocol
   fields are non-negative, hence almost always 1–2 bytes. *)
let varint w v =
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      u8 w b;
      continue_ := false
    end
    else u8 w (b lor 0x80)
  done

let raw_string w s =
  let n = String.length s in
  ensure w n;
  if w.write then Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

let string w s =
  varint w (String.length s);
  raw_string w s

let patch_u32 w ~pos v =
  if not w.write then invalid_arg "Buf.patch_u32: counting writer";
  if pos < 0 || pos + 4 > w.len then invalid_arg "Buf.patch_u32: out of range";
  Bytes.unsafe_set w.buf pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set w.buf (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set w.buf (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set w.buf (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

(* Reader *)

exception Short
exception Bad of string

type r = { rbuf : Bytes.t; mutable pos : int; limit : int }

let reader buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Buf.reader: region out of bounds";
  { rbuf = buf; pos; limit = pos + len }

let remaining r = r.limit - r.pos
let at_end r = r.pos = r.limit

let r_u8 r =
  if r.pos >= r.limit then raise Short;
  let v = Char.code (Bytes.unsafe_get r.rbuf r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  if r.pos + 4 > r.limit then raise Short;
  let g i = Char.code (Bytes.unsafe_get r.rbuf (r.pos + i)) in
  let v = g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let r_varint r =
  let v = ref 0 in
  let shift = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if !shift > 56 then raise (Bad "varint too long");
    let b = r_u8 r in
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue_ := false
  done;
  !v

let r_raw_string r n =
  if n < 0 then raise (Bad "negative length");
  if r.pos + n > r.limit then raise Short;
  let s = Bytes.sub_string r.rbuf r.pos n in
  r.pos <- r.pos + n;
  s

let r_string r = r_raw_string r (r_varint r)
