(** Length-prefixed, CRC-32-checksummed framing over {!Buf}.

    Layout: [[magic u8][payload_len u32le][crc32 u32le][payload]] — a
    9-byte header; the CRC covers exactly the payload.  [decode]
    validates magic, length and CRC before the payload is exposed, so a
    payload decoder only ever runs over checksummed bytes. *)

val magic : int
val header_bytes : int

type error =
  | Truncated of { expected : int; got : int }
      (** Buffer shorter than the header or the declared frame. *)
  | Bad_magic of int
  | Trailing of int  (** Bytes left over after the declared frame. *)
  | Crc_mismatch of { stored : int; computed : int }

val pp_error : Format.formatter -> error -> unit

val encoded_size : payload:(Buf.w -> unit) -> int
(** Size of the frame [encode] would produce, via a counting pass —
    no allocation. *)

val encode : payload:(Buf.w -> unit) -> Bytes.t
(** Frame the payload emitter's output: one counting pass, one
    exactly-sized allocation, one writing pass, CRC patched in place. *)

val encode_into : Buf.w -> payload:(Buf.w -> unit) -> unit
(** Append a complete frame to an existing writing-mode buffer (used by
    the durable journal, which follows the frame with a commit byte). *)

val decode : Bytes.t -> (Buf.r, error) result
(** Validate the whole buffer as exactly one frame and return a reader
    over its payload.  Never raises. *)

val decode_sub : Bytes.t -> pos:int -> len:int -> (Buf.r, error) result
(** [decode] over a sub-region. *)
