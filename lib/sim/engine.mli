(** Deterministic discrete-event simulation engine.

    An engine owns a virtual clock and a pending-event queue.  Events are
    closures scheduled at absolute virtual times; simultaneous events fire in
    scheduling order (FIFO among equal times), so a run is a pure function of
    the seed of whatever randomness fed it.

    The whole replication stack — network delivery, site failures and repairs,
    protocol timeouts — runs on one engine. *)

type t

type handle
(** Identifies a scheduled event so that it can be cancelled (e.g. a protocol
    timeout that the awaited reply makes moot). *)

val create : unit -> t
(** A fresh engine with the clock at [0.0] and no pending events. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at time [now t +. delay].  [delay] must
    be non-negative; raises [Invalid_argument] otherwise.  Returns a handle
    for {!cancel}. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val cancel : t -> handle -> unit
(** [cancel t h] prevents the event from firing.  Cancelling an event that
    already fired (or was already cancelled) is a no-op.  Cancelled events
    are deleted lazily, but the queue is compacted whenever they outnumber
    the live events, so cancellation is amortized O(1) and the queue never
    holds more dead events than live ones (beyond a small constant). *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events.  O(1): a
    live counter maintained by {!schedule}/{!cancel}/firing — an earlier
    version walked the whole heap and allocated a list per call. *)

val queue_size : t -> int
(** Physical size of the event queue, cancelled-but-not-yet-removed events
    included; [queue_size t >= pending t].  Exposed so tests can assert the
    compaction bound. *)

val step : t -> bool
(** [step t] fires the earliest pending event, advancing the clock to its
    time.  Returns [false] when no event is pending (clock unchanged). *)

val run : t -> unit
(** Fires events until none remain.  Raises [Stalled] below never; an
    infinitely self-rescheduling event makes this loop forever — use
    {!run_until} for open-ended processes. *)

val run_until : t -> float -> unit
(** [run_until t horizon] fires every event with time [<= horizon], then
    advances the clock to exactly [horizon].  Events scheduled beyond the
    horizon remain pending. *)

val events_fired : t -> int
(** Total events executed since creation (for tests and reporting). *)
