(** A bounded single-server FIFO work queue on the simulation engine.

    Models a site's finite processing capacity: jobs (message handling,
    client operations) queue behind one virtual processor that drains them
    in submission order, each occupying the processor for its caller-sampled
    service cost times the current {e rate factor} (the gray-failure /
    degradation knob).  A full queue {e sheds} new work — the submission is
    refused and counted, never silently dropped.

    The server draws no randomness of its own: callers sample service costs
    from whatever seeded distribution they maintain, so determinism is
    entirely in their hands.  With no server in the path (the default
    everywhere), nothing here ever runs. *)

type t

val create : Engine.t -> capacity:int -> t
(** A fresh idle server whose waiting room holds at most [capacity] jobs
    (the job in service is not counted against it).  [capacity >= 1] or
    [Invalid_argument]. *)

val submit : t -> cost:float -> (unit -> unit) -> bool
(** [submit t ~cost work] enqueues a job whose effects ([work]) fire when
    its service completes, [cost *. rate_factor] after it reaches the head
    of the queue.  Returns [false] — and counts a shed — when the waiting
    room is full; the job then never runs. *)

val set_rate_factor : t -> float -> unit
(** Service-time multiplier, applied as each job {e starts} service (the
    job currently in service keeps its schedule).  [1.0] is healthy;
    [10.0] is the canonical slow-site gray failure.  Must be positive. *)

val rate_factor : t -> float

val clear : t -> unit
(** Drop every queued job and cancel the one in service (their [work]
    never runs); the drops are counted in {!dropped}, not {!shed}.  Used
    when the owning site fail-stops: queued work dies with the machine. *)

val flood : t -> count:int -> cost:float -> unit
(** Inject [count] no-op jobs of the given cost — an adversarial burst
    that fills the queue ahead of legitimate work (the [queue-flood] chaos
    event).  Jobs beyond capacity shed as usual. *)

val busy : t -> bool
val depth : t -> int
(** Jobs in the server right now, the one in service included. *)

(** {1 Counters and distributions} *)

val submitted : t -> int
(** Jobs accepted (shed ones excluded). *)

val served : t -> int
(** Jobs whose service completed and whose [work] ran. *)

val shed : t -> int
(** Submissions refused on a full queue. *)

val dropped : t -> int
(** Jobs destroyed by {!clear} (site failure), in-service one included. *)

val depth_histogram : t -> Util.Stats.Histogram.t
(** Queue depth observed at each accepted submission (before the job
    joins), one unit-width bin per slot. *)

val sojourn : t -> Util.Stats.t
(** Wait-plus-service time of served jobs. *)
