(** Sharded execution of independent simulation units.

    Million-block campaigns spend their time in embarrassingly parallel
    folds: every virtual block group, chaos seed or bench cell is a
    self-contained simulation whose seed derives from the experiment
    parameters alone.  This module distributes those units over OCaml 5
    domains (via {!Domains_compat}) while keeping the result a pure
    function of the unit list:

    - units are identified and seeded {e before} sharding, so the shard
      count never changes what any unit computes;
    - lanes get contiguous balanced chunks and results are reassembled
      in unit order, so [--shards n] is bit-identical to [--shards 1]
      whether lanes ran on domains (OCaml 5) or sequentially (4.14). *)

val shard_of_block : shards:int -> int -> int
(** [shard_of_block ~shards block] is the stable shard owning [block]:
    the block id mixed through SplitMix64 and reduced mod [shards].
    Depends only on [block] and [shards].  Raises [Invalid_argument]
    when [shards <= 0]. *)

val lane_seed : seed:int -> shard:int -> int
(** [lane_seed ~seed ~shard] derives the PRNG seed for one shard's lane
    from the campaign seed: distinct shards get decorrelated SplitMix64
    streams, and the derivation is independent of how many shards exist.
    Raises [Invalid_argument] on a negative shard id. *)

type stats = { lanes_used : int; parallel : bool }
(** How a [map_tasks] call would execute: the number of lanes actually
    used ([min shards (max tasks 1)]) and whether they run on domains. *)

val plan_lanes : shards:int -> tasks:int -> stats
(** Raises [Invalid_argument] when [shards <= 0] or [tasks < 0]. *)

val map_tasks : shards:int -> tasks:int -> (int -> 'a) -> 'a array
(** [map_tasks ~shards ~tasks f] computes [[| f 0; ...; f (tasks - 1) |]],
    running chunks of tasks on up to [shards] parallel lanes.  [f] must
    be self-contained (no shared mutable state; build per-task engines
    and PRNGs from derived seeds).  The result is independent of
    [shards].  Raises [Invalid_argument] when [shards <= 0] or
    [tasks < 0]. *)

val map_list : shards:int -> 'a list -> ('a -> 'b) -> 'b list
(** List version of {!map_tasks}, preserving order. *)
