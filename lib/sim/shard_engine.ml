(* Sharded execution of independent simulation units.

   The determinism story: a campaign or sweep is first decomposed into
   self-contained logical units (virtual block groups, chaos seeds, bench
   cells) whose identity and seeds depend only on the experiment
   parameters — never on the shard count.  [map_tasks] then distributes
   those units over at most [shards] lanes in contiguous, balanced
   chunks and reassembles the results in unit order.  Because every unit
   builds its own engine, cluster and PRNG from [lane_seed]-style
   derivation, the shard count controls only how many domains execute
   the fold, not what any unit computes — so [--shards n] is
   bit-identical to [--shards 1] by construction. *)

let shard_of_block ~shards block =
  if shards <= 0 then invalid_arg "Shard_engine.shard_of_block: shards must be positive";
  (* Stable hash: the low bits of a block id are correlated with
     placement patterns in workloads, so mix through SplitMix64 before
     reducing.  [land max_int] clears the sign bit ([derive] returns the
     full 63-bit range). *)
  Util.Prng.derive ~seed:block 0 land max_int mod shards

let lane_seed ~seed ~shard =
  if shard < 0 then invalid_arg "Shard_engine.lane_seed: negative shard id";
  Util.Prng.derive ~seed shard

type stats = { lanes_used : int; parallel : bool }

let plan_lanes ~shards ~tasks =
  if shards <= 0 then invalid_arg "Shard_engine.map_tasks: shards must be positive";
  if tasks < 0 then invalid_arg "Shard_engine.map_tasks: negative task count";
  let lanes = min shards (max tasks 1) in
  { lanes_used = lanes; parallel = Domains_compat.parallel_available && lanes > 1 }

let map_tasks ~shards ~tasks f =
  let { lanes_used = lanes; _ } = plan_lanes ~shards ~tasks in
  if tasks = 0 then [||]
  else begin
    (* Contiguous balanced chunks: lane [l] covers [lo, hi).  Chunking
       only affects which domain runs a unit, never the unit itself. *)
    let chunk lane =
      let q = tasks / lanes and r = tasks mod lanes in
      let lo = (lane * q) + min lane r in
      let hi = lo + q + if lane < r then 1 else 0 in
      let rec go t acc = if t >= hi then List.rev acc else go (t + 1) (f t :: acc) in
      go lo []
    in
    let per_lane = Domains_compat.parallel_run ~lanes chunk in
    Array.of_list (List.concat (Array.to_list per_lane))
  end
[@@lint.allow "domain-capture"
  "f is the spawn-point contract itself: map_tasks is listed in Config.spawn_points, so the \
   analyzer inspects the concrete thunk at every call site instead of this opaque parameter"]

let map_list ~shards xs f =
  let arr = Array.of_list xs in
  Array.to_list (map_tasks ~shards ~tasks:(Array.length arr) (fun i -> f arr.(i)))
[@@lint.allow "domain-capture"
  "f is the spawn-point contract, analysed at map_list call sites; arr is sealed before the \
   spawn (Array.of_list of the caller's list) and every lane only reads its own disjoint \
   indices afterwards"]
