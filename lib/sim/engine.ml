type state = Pending | Cancelled | Fired

type event = { time : float; seq : int; action : unit -> unit; mutable state : state }

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;  (* scheduled, not yet fired, not cancelled *)
  mutable dead_in_queue : int;  (* cancelled events awaiting lazy deletion *)
  queue : event Heap.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { clock = 0.0; next_seq = 0; fired = 0; live = 0; dead_in_queue = 0;
    queue = Heap.create ~cmp:compare_events }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  let ev = { time; seq = t.next_seq; action; state = Pending } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

(* Lazy deletion leaves cancelled events in the heap until popped, which a
   long run with many moot timeouts would grow without bound.  Compact
   whenever the dead outnumber the live: each cancelled event is visited by
   at most one O(n) sweep that removes at least half the queue, so the
   amortized cost per cancellation stays constant. *)
let compact_if_worthwhile t =
  if t.dead_in_queue > 8 && 2 * t.dead_in_queue > Heap.size t.queue then begin
    Heap.filter_in_place t.queue (fun ev -> ev.state = Pending);
    t.dead_in_queue <- 0
  end

let cancel t h =
  if h.state = Pending then begin
    h.state <- Cancelled;
    t.live <- t.live - 1;
    t.dead_in_queue <- t.dead_in_queue + 1;
    compact_if_worthwhile t
  end

let pending t = t.live
let queue_size t = Heap.size t.queue

let fire t ev =
  t.clock <- ev.time;
  ev.state <- Fired;
  t.live <- t.live - 1;
  t.fired <- t.fired + 1;
  ev.action ()

(* Pop the earliest live event at or before [horizon]; cancelled events are
   discarded without advancing the clock. *)
let rec pop_live t ~horizon =
  match Heap.peek t.queue with
  | None -> None
  | Some ev when ev.time > horizon -> None
  | Some _ -> (
      match Heap.pop t.queue with
      | Some ev when ev.state = Pending -> Some ev
      | Some _ ->
          t.dead_in_queue <- t.dead_in_queue - 1;
          pop_live t ~horizon
      | None -> None)

let step t =
  match pop_live t ~horizon:infinity with
  | None -> false
  | Some ev ->
      fire t ev;
      true

let run t = while step t do () done

let run_until t horizon =
  if horizon < t.clock then invalid_arg "Engine.run_until: horizon is in the past";
  let rec loop () =
    match pop_live t ~horizon with
    | Some ev ->
        fire t ev;
        loop ()
    | None -> ()
  in
  loop ();
  (* A fired event may have driven the engine reentrantly (a synchronous
     client inside an event handler) past [horizon]; the clock must never
     move backwards. *)
  t.clock <- Float.max t.clock horizon

let events_fired t = t.fired
