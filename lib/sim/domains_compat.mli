(** Portability shim over OCaml 5 domains.

    The sharded engine ({!Shard_engine}) wants to run independent
    simulation lanes on parallel domains when the runtime has them
    (OCaml >= 5.0) and fall back to a plain sequential loop on 4.14.
    Everything version-specific lives behind this one module; dune
    selects the implementation matching the compiler (the same trick the
    linter uses for typedtree drift).

    The contract both implementations satisfy, and the reason the
    fallback is {e bit-identical} to the parallel path: [parallel_run]
    applies [f] to every lane index exactly once, each application sees
    only the state it creates itself, and the result array is indexed by
    lane — so the schedule (parallel, sequential, or anything in
    between) cannot influence the value returned. *)

val parallel_available : bool
(** [true] iff this build can actually run lanes on separate domains. *)

val recommended_domains : unit -> int
(** The runtime's parallelism hint ([Domain.recommended_domain_count] on
    OCaml 5); [1] on 4.14. *)

val parallel_run : lanes:int -> (int -> 'a) -> 'a array
(** [parallel_run ~lanes f] computes [[| f 0; ...; f (lanes - 1) |]].
    On OCaml 5, lanes [1 .. lanes - 1] run on freshly spawned domains
    while lane [0] runs on the calling one; on 4.14 the lanes run
    sequentially in ascending order.  [f] must be self-contained: it
    must not touch mutable state shared with another lane (each lane
    builds its own engine, cluster and PRNG streams).  Exceptions raised
    by any lane are re-raised after every domain is joined.  Raises
    [Invalid_argument] when [lanes <= 0]. *)
