(** A polymorphic binary min-heap with user-supplied ordering.

    Used as the pending-event set of {!Engine}.  Ties must be broken by the
    ordering function itself (the engine orders by [(time, sequence)]), so
    extraction order is fully deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val clear : 'a t -> unit

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** [filter_in_place h keep] drops every element for which [keep] is false
    and restores the heap invariant over the survivors, in O(n) — the
    compaction primitive behind the engine's lazy event deletion.  Dropped
    elements are not retained by the backing array: after the call nothing
    they reference is reachable from [h] (even when every element was
    dropped). *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order, not sorted); intended for
    tests and introspection. *)
