type job = { work : unit -> unit; cost : float; enqueued_at : float }

type t = {
  engine : Engine.t;
  capacity : int;
  queue : job Queue.t;
  mutable in_service : Engine.handle option;
  mutable rate_factor : float;
  mutable submitted : int;
  mutable served : int;
  mutable shed : int;
  mutable dropped : int;
  depth_hist : Util.Stats.Histogram.t;
  sojourn : Util.Stats.t;
}

let create engine ~capacity =
  if capacity < 1 then invalid_arg "Server.create: capacity must be at least 1";
  {
    engine;
    capacity;
    queue = Queue.create ();
    in_service = None;
    rate_factor = 1.0;
    submitted = 0;
    served = 0;
    shed = 0;
    dropped = 0;
    (* Depth lives in [0, capacity]; one unit-width bin per slot. *)
    depth_hist = Util.Stats.Histogram.create ~lo:0.0 ~hi:(float_of_int (capacity + 1)) ~bins:(capacity + 1);
    sojourn = Util.Stats.create ();
  }

let busy t = Option.is_some t.in_service
let depth t = Queue.length t.queue + if busy t then 1 else 0

(* The service-time multiplier is read when a job *starts* service, so
   degrading a site mid-run slows everything still queued behind the job in
   service — exactly the gray-failure shape (a saturated machine drags its
   whole backlog), and the knob can be flipped both ways by chaos events. *)
let rec start_service t (job : job) =
  let delay = job.cost *. t.rate_factor in
  t.in_service <-
    Some
      (Engine.schedule t.engine ~delay (fun () ->
           t.in_service <- None;
           t.served <- t.served + 1;
           Util.Stats.add t.sojourn (Engine.now t.engine -. job.enqueued_at);
           job.work ();
           (* The completed job's work may have refilled or cleared the
              queue; re-check rather than assuming the pre-work state. *)
           if not (busy t) then
             match Queue.take_opt t.queue with
             | Some next -> start_service t next
             | None -> ()))

let submit t ~cost work =
  if cost < 0.0 then invalid_arg "Server.submit: negative cost";
  if busy t && Queue.length t.queue >= t.capacity then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    t.submitted <- t.submitted + 1;
    Util.Stats.Histogram.add t.depth_hist (float_of_int (depth t));
    let job = { work; cost; enqueued_at = Engine.now t.engine } in
    if busy t then Queue.add job t.queue else start_service t job;
    true
  end

let set_rate_factor t f =
  if not (Float.is_finite f && f > 0.0) then invalid_arg "Server.set_rate_factor: factor must be positive";
  t.rate_factor <- f

let rate_factor t = t.rate_factor

let clear t =
  t.dropped <- t.dropped + depth t;
  Queue.clear t.queue;
  match t.in_service with
  | Some h ->
      Engine.cancel t.engine h;
      t.in_service <- None
  | None -> ()

let flood t ~count ~cost =
  if count < 0 then invalid_arg "Server.flood: negative count";
  for _ = 1 to count do
    ignore (submit t ~cost (fun () -> ()) : bool)
  done

let submitted t = t.submitted
let served t = t.served
let shed t = t.shed
let dropped t = t.dropped
let depth_histogram t = t.depth_hist
let sojourn t = t.sojourn
