type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }

let size h = h.size
let is_empty h = h.size = 0

let grow h x =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 16 else capacity * 2 in
    let data' = Array.make capacity' x in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some root
  end

let clear h =
  h.data <- [||];
  h.size <- 0

let filter_in_place h keep =
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    if keep h.data.(i) then begin
      h.data.(!j) <- h.data.(i);
      incr j
    end
  done;
  (* Overwrite the dropped tail so the array stops pinning dead elements.
     When the sweep removed everything there is no live element to fill
     with, so release the whole array — leaving it in place would pin every
     dropped element (and any closure it carries) until the next push. *)
  if !j > 0 then Array.fill h.data !j (h.size - !j) h.data.(0) else h.data <- [||];
  h.size <- !j;
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done

let to_list h =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (h.data.(i) :: acc) in
  collect (h.size - 1) []
