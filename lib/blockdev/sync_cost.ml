type profile = Hdd | Ssd | Nvme

let to_string = function Hdd -> "hdd" | Ssd -> "ssd" | Nvme -> "nvme"

let of_string = function
  | "hdd" -> Some Hdd
  | "ssd" -> Some Ssd
  | "nvme" -> Some Nvme
  | _ -> None

let all = [ Hdd; Ssd; Nvme ]

(* Class medians from Mingardi & Vieira, "Characterizing Synchronous
   Writes in Stable Memory Devices": a small synchronous append+fsync
   costs on the order of ~10 ms on spinning disks (platter rotation +
   write-cache flush), low single-digit milliseconds on SATA SSDs, and
   tens of microseconds on NVMe devices whose flush path hits on-device
   power-loss-protected buffers.  One simulated time unit is 1 ms
   (matching the latency tables' unit), so the values below are
   milliseconds. *)
let fsync_latency = function Hdd -> 12.0 | Ssd -> 1.8 | Nvme -> 0.08

let pp ppf p = Format.pp_print_string ppf (to_string p)
