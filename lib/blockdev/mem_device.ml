type t = { durable : Durable_store.t; mutable alive : bool }

let create ~capacity = { durable = Durable_store.create ~capacity; alive = true }

let capacity t = Durable_store.capacity t.durable

let read_block t k =
  if (not t.alive) || k < 0 || k >= capacity t then None
  else
    match Durable_store.read_verified t.durable k with
    | Some (b, _) -> Some b
    | None ->
        (* A single disk has no peer to repair from: a rotten sector is a
           read failure, the contrast replication exists to mask. *)
        None

let write_block t k b =
  if (not t.alive) || k < 0 || k >= capacity t then false
  else begin
    let version = Store.version (Durable_store.store t.durable) k + 1 in
    Durable_store.write t.durable k b ~version;
    true
  end

let fail t =
  Durable_store.crash t.durable;
  t.alive <- false

let revive t =
  ignore (Durable_store.scrub t.durable);
  t.alive <- true

let arm_torn_write ?mode t = Durable_store.arm_torn_write ?mode t.durable
let inject_bitrot t k = if k >= 0 && k < capacity t then Durable_store.inject_bitrot t.durable k
let replace_disk t = Durable_store.replace_disk t.durable
let checksum_ok t k = k >= 0 && k < capacity t && Durable_store.checksum_ok t.durable k
let storage_counters t = Durable_store.counters t.durable
