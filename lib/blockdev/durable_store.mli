(** Crash-faithful stable storage over {!Store}.

    {!Store} is an ideal disk.  This layer wraps it with the honest model
    the protocols must actually survive:

    - {b per-block CRC-32 checksums} over the (payload bytes, version)
      pair, kept in the {!Block_file} index and sealed only at this
      layer's commit points, so rotten or torn bytes are detected
      instead of served;
    - {b a two-phase intention journal} making a block write and its
      version update crash-atomic as a pair: the intention is serialized
      through the {!Codec} into a checksummed byte record, appended and
      committed (one commit-byte flip) before the in-place apply, so a
      crash tears at most one phase and the recovery {!scrub} — by
      actually decoding the record — either replays a committed
      intention or discards an unreadable/uncommitted one;
    - {b journaled metadata} ([set_meta]) for the crash-critical protocol
      state that nominally "lives on disk" — was-available sets, dynamic
      voting groups — with registered defaults to fall back to when a torn
      metadata write is discovered;
    - {b seeded fault hooks}: torn writes armed at crash boundaries
      ({!arm_torn_write} + {!crash}), latent sector errors
      ({!inject_bitrot}), and whole-disk replacement ({!replace_disk},
      the paper's fresh-replica regeneration case).

    {b Quarantine discipline.}  A checksum-invalid block is {e quarantined}:
    its {!effective_version} is 0 (it claims nothing, votes nothing, and is
    never transferred to a peer), but its stored version number remains
    trustworthy — sector decay corrupts data bytes, not the separately
    journaled version table — and acts as a floor: the block only accepts
    verified replacement data at a version [>=] the stored one, so a
    quarantined copy can never be silently regressed below a version this
    disk acknowledged.  Offers below the floor are refused (counted in
    {!counters}) and the block stays quarantined until a current peer or a
    fresh write supersedes it.

    With no faults injected the layer is pass-through: every write goes
    straight to the store with a matching checksum, and behaviour is
    bit-identical to using {!Store} directly. *)

type t

(** How an armed crash tears the most recent intention (see {!crash}). *)
type tear =
  | Torn_apply
      (** The journal record committed but the in-place apply was torn:
          garbage data bytes under an intact version.  The scrub replays
          the intention exactly — an acknowledged write survives. *)
  | Torn_journal
      (** The journal append itself was torn: neither the intention nor
          the apply became durable.  The pre-image is restored and the
          scrub discards the half-written record — the write never
          happened, which is only crash-consistent for writes that were
          never acknowledged. *)

type counters = {
  mutable torn_writes : int;  (** armed tears that fired at a crash *)
  mutable bitrot_injected : int;
  mutable refused_installs : int;
      (** offers below a quarantined block's version floor *)
  mutable repaired_blocks : int;
      (** quarantined blocks healed by verified data *)
  mutable scrub_runs : int;
  mutable scrub_replayed : int;
  mutable scrub_discarded : int;
  mutable scrub_quarantined : int;
  mutable scrub_meta_reset : int;
  mutable disk_replacements : int;
  mutable journal_commits : int;
      (** intention records committed — the sync-write (fsync) points a
          real journal would pay for; see {!Sync_cost} *)
}

val zero_counters : unit -> counters
val accumulate_counters : counters -> counters -> unit
(** [accumulate_counters acc c] adds [c] into [acc] (cluster totals). *)

type scrub_report = {
  replayed : int;  (** committed intentions whose torn apply was redone *)
  discarded : int;  (** uncommitted intentions dropped *)
  quarantined : int;  (** checksum-invalid blocks awaiting peer repair *)
  meta_reset : string list;  (** metadata keys reset to their defaults *)
}

val create : capacity:int -> t
(** A fresh durable store over a blank disk: zeroed blocks at version 0,
    all checksums valid. *)

val store : t -> Store.t
(** The underlying ideal store.  Reads through it are unchecked; writers
    must go through {!write}/{!apply_updates} or the checksums go stale. *)

val capacity : t -> int

(** {1 Checked access} *)

val checksum_ok : t -> Block.id -> bool
val effective_version : t -> Block.id -> int
(** The stored version when the checksum is valid, 0 otherwise. *)

val effective_versions : t -> Version_vector.t

val read_verified : t -> Block.id -> (Block.t * int) option
(** Contents and version, or [None] when quarantined. *)

val write : t -> Block.id -> Block.t -> version:int -> unit
(** Journalled write (intention append + commit + apply).  Raises
    [Invalid_argument] on a version regression over a {e verified} block,
    exactly like {!Store.write}; over a quarantined block a below-floor
    version is refused silently (counted) and an at-or-above-floor version
    heals the block. *)

val apply_updates : t -> (Block.id * int * Block.t) list -> unit
(** Install a recovery transfer set of {e verified peer data}: strictly
    newer entries install as in {!Store.apply_updates}, and an entry at a
    quarantined block's exact version floor repairs it in place.  Not
    journalled — a crash mid-recovery leaves the site failed and the next
    recovery re-runs the exchange. *)

val verified_blocks_newer_than : t -> Version_vector.t -> (Block.id * int * Block.t) list
(** {!Store.blocks_newer_than} restricted to checksum-valid blocks: a
    transfer never ships quarantined bytes to a peer. *)

(** {1 Journaled metadata} *)

val set_meta : t -> string -> int list -> unit
(** Durably record a metadata value through the same intention journal as
    block writes (so a crash can tear it, and the scrub can tell). *)

val get_meta : t -> string -> int list option

val set_meta_default : t -> string -> int list -> unit
(** Register the conservative fallback for a key — what the scrub restores
    when the key's last write was torn, and what {!replace_disk} installs.
    Also initialises the key if unset (without journaling). *)

(** {1 Faults} *)

val arm_torn_write : ?mode:tear -> t -> unit
(** Arm the next {!crash} to tear the most recent intention (default
    {!Torn_apply}). *)

val armed : t -> tear option

val crash : t -> unit
(** The site lost power.  If a tear is armed it is applied to the journal's
    current slot (see {!tear}); otherwise the disk survives intact, as the
    paper assumes.  Idempotent once disarmed. *)

val inject_bitrot : t -> Block.id -> unit
(** Latent sector error: deterministically flip an actual byte of the
    block's region in the backing image, leaving its version intact.
    The corruption is silent until a checksum verification runs the
    real CRC over the damaged bytes. *)

val replace_disk : t -> unit
(** The medium was swapped: every block returns to verified (zero,
    version 0) and all metadata falls back to its registered defaults —
    the blank-disk / fresh-replica regeneration case. *)

(** {1 Recovery} *)

val scrub : t -> scrub_report
(** Recovery-time integrity pass, run before a repaired site rejoins:
    replay a committed-but-torn intention, discard an uncommitted one,
    reset torn metadata keys to their defaults, and count the quarantined
    blocks left for peer transfer to heal. *)

val last_scrub : t -> scrub_report option

val rebless : t -> unit
(** Recompute every checksum from the current store contents and clear the
    journal — for checkpoint restore, which rebuilds stores directly and
    by construction restores only verified state. *)

val counters : t -> counters
(** Live counters for this store (shared, not a snapshot). *)
