(** A single in-memory disk: the non-replicated baseline device.

    Implements {!Device_intf.S}; useful for testing the file system in
    isolation and as the "one ordinary device" a reliable device is
    compared against.  Backed by a {!Durable_store}, so the same media
    faults the replicated cluster masks — torn writes at a crash, bit
    rot, disk replacement — can be injected here too: the single disk
    scrubs what its journal can repair on {!revive}, but a rotten sector
    is simply a failed read, because there is no peer to repair from. *)

type t

val create : capacity:int -> t

include Device_intf.S with type t := t

val fail : t -> unit
(** Simulate the single disk dying (a crash: an armed torn write fires):
    all subsequent operations return [None] / [false] — the contrast
    motivating replication. *)

val revive : t -> unit
(** Power back on: runs the journal scrub, then serves again. *)

(** {1 Media faults} *)

val arm_torn_write : ?mode:Durable_store.tear -> t -> unit
(** Arm the next {!fail} to tear the most recent write. *)

val inject_bitrot : t -> Block.id -> unit
(** Silently rot one block; the next [read_block] of it returns [None]. *)

val replace_disk : t -> unit
(** Swap the medium for a blank one: all data gone, all reads legal. *)

val checksum_ok : t -> Block.id -> bool
val storage_counters : t -> Durable_store.counters
