(** Sync-write (fsync) cost classes for the intention journal.

    The durable layer's two-phase journal commits are the points where a
    real implementation would pay a synchronous write to stable memory.
    This module gives that cost a profile-selectable latency, calibrated
    from the device classes measured by Mingardi & Vieira,
    "Characterizing Synchronous Writes in Stable Memory Devices"
    (PAPERS.md): spinning disks pay ~10 ms per small synchronous
    append+flush, SATA SSDs low single-digit ms, NVMe with protected
    write buffers tens of µs.

    The model is simulation-clock based ([Util.Clock]-independent): the
    cluster charges {!fsync_latency} simulated time units (1 unit =
    1 ms, the latency tables' unit) at each client-visible journal
    commit point.  [Config.sync_profile = None] (the default) charges
    nothing and is bit-identical to the legacy behaviour. *)

type profile = Hdd | Ssd | Nvme

val fsync_latency : profile -> float
(** Simulated milliseconds per journal commit. *)

val all : profile list
val to_string : profile -> string
val of_string : string -> profile option
val pp : Format.formatter -> profile -> unit
