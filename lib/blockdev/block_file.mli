(** ADR-060-style block file: flat payload image + compact
    (offset, length, version, checksum) index.

    Payloads live as real bytes in one image buffer, appended on first
    write and overwritten in place thereafter; never-written blocks are
    non-resident and read as the zero block.  The index checksum is
    CRC-32 over the payload mixed with the version.

    {b Sealing discipline}: {!write} and {!demote} update payload and
    version but leave the index checksum stale; only {!seal} recomputes
    it.  Callers that own the durability story (the two-phase journal in
    {!Durable_store}) seal at commit points — everything else, including
    byte-level fault injection, is caught by {!checksum_ok}. *)

type t

val create : capacity:int -> t
val capacity : t -> int

val resident : t -> Block.id -> bool
(** Whether the block has a region in the image. *)

val read : t -> Block.id -> Block.t
(** Current payload (the zero block when non-resident). *)

val version : t -> Block.id -> int

val write : t -> Block.id -> Block.t -> version:int -> unit
(** Store payload bytes and version.  Does {e not} reseal — see the
    sealing discipline above.  No version-regression policy here; that
    is {!Store}'s contract. *)

val seal : t -> Block.id -> unit
(** Recompute the index checksum from the current (payload, version). *)

val checksum_ok : t -> Block.id -> bool
(** Whether the sealed checksum matches the bytes in the image now. *)

val demote : t -> Block.id -> unit
(** Zero the payload and version (does not reseal). *)

val reset : t -> unit
(** Truncate the image and return every block to the fresh non-resident
    sealed-zero state (disk replacement). *)

val flip_byte : t -> Block.id -> pos:int -> mask:int -> unit
(** XOR one actual image byte of the block's region (bitrot). *)

val blit_suffix : t -> Block.id -> from:int -> string -> unit
(** Overwrite bytes [[from, Block.size)] of the block's region with the
    same range of [s] (a torn in-place apply: the prefix of the new
    write landed, the suffix still holds pre-image bytes). *)

val block_equal : t -> Block.id -> t -> Block.id -> bool
(** Payload-byte equality across files, non-resident reading as zero. *)

val bytes_resident : t -> int
(** Bytes of the image currently holding block regions. *)
