(** A site's local block store.

    Holds the physical copies of the replicated blocks together with their
    version numbers.  The store models a disk: it survives site failures (a
    failed site that repairs still has its — possibly stale — blocks and
    versions), which is why recovery only transfers the blocks modified
    during the outage.

    The store itself is an {e ideal} disk: every byte written is the byte
    read back.  {!Durable_store} wraps it with the honest model — torn
    writes at crash boundaries, latent sector errors, whole-disk
    replacement — and the checksums and intention journal that let the
    protocols defend against them.

    Physically the store is a {!Block_file}: payloads are real bytes in a
    flat image with an (offset, length, version, checksum) index, which
    is what makes the durable layer's media faults byte-accurate.  A
    write through this API updates payload and version but deliberately
    leaves the index checksum stale (the durable layer seals it at its
    commit points), so writes that bypass the journal are detectable. *)

type t

val create : capacity:int -> t
(** [create ~capacity] is a store of [capacity] zeroed blocks, all at
    version 0. *)

val capacity : t -> int

val read : t -> Block.id -> Block.t
(** Contents of a block; raises [Invalid_argument] out of range. *)

val write : t -> Block.id -> Block.t -> version:int -> unit
(** [write t k b ~version] installs contents [b] for block [k] at version
    [version].  Versions must never move backwards: raises
    [Invalid_argument] if [version] is below the stored version.  (Equal is
    allowed: re-installing the same version is idempotent.) *)

val version : t -> Block.id -> int

val versions : t -> Version_vector.t
(** A copy of the full version vector. *)

val blocks_newer_than : t -> Version_vector.t -> (Block.id * int * Block.t) list
(** [blocks_newer_than t v] lists [(id, version, contents)] for every block
    strictly newer in the store than in [v]: the transfer set of a recovery
    exchange. *)

val apply_updates : t -> (Block.id * int * Block.t) list -> unit
(** Install a recovery transfer set; entries older than the store are
    ignored (the store is already as current). *)

val demote : t -> Block.id -> unit
(** Reset one block to the blank-disk state (zero contents, version 0), the
    one sanctioned version regression: it models replacing the medium under
    a copy, so a recovery exchange transfers the block afresh.  Used by the
    disk-replacement fault of {!Durable_store}; the protocols themselves
    never lower a version. *)

val equal_contents : t -> t -> bool
(** Same capacity, versions and contents everywhere — the consistency
    predicate tests assert between available sites. *)

val block_file : t -> Block_file.t
(** The backing block file.  For the durable layer (checksum sealing,
    byte-level fault injection) and diagnostics; protocol code never
    touches it. *)
