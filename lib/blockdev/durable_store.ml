type tear = Torn_apply | Torn_journal

type counters = {
  mutable torn_writes : int;
  mutable bitrot_injected : int;
  mutable refused_installs : int;
  mutable repaired_blocks : int;
  mutable scrub_runs : int;
  mutable scrub_replayed : int;
  mutable scrub_discarded : int;
  mutable scrub_quarantined : int;
  mutable scrub_meta_reset : int;
  mutable disk_replacements : int;
  mutable journal_commits : int;
}

let zero_counters () =
  {
    torn_writes = 0;
    bitrot_injected = 0;
    refused_installs = 0;
    repaired_blocks = 0;
    scrub_runs = 0;
    scrub_replayed = 0;
    scrub_discarded = 0;
    scrub_quarantined = 0;
    scrub_meta_reset = 0;
    disk_replacements = 0;
    journal_commits = 0;
  }

let accumulate_counters acc c =
  acc.torn_writes <- acc.torn_writes + c.torn_writes;
  acc.bitrot_injected <- acc.bitrot_injected + c.bitrot_injected;
  acc.refused_installs <- acc.refused_installs + c.refused_installs;
  acc.repaired_blocks <- acc.repaired_blocks + c.repaired_blocks;
  acc.scrub_runs <- acc.scrub_runs + c.scrub_runs;
  acc.scrub_replayed <- acc.scrub_replayed + c.scrub_replayed;
  acc.scrub_discarded <- acc.scrub_discarded + c.scrub_discarded;
  acc.scrub_quarantined <- acc.scrub_quarantined + c.scrub_quarantined;
  acc.scrub_meta_reset <- acc.scrub_meta_reset + c.scrub_meta_reset;
  acc.disk_replacements <- acc.disk_replacements + c.disk_replacements;
  acc.journal_commits <- acc.journal_commits + c.journal_commits

type scrub_report = {
  replayed : int;
  discarded : int;
  quarantined : int;
  meta_reset : string list;
}

type intention =
  | Data of {
      block : Block.id;
      version : int;
      data : Block.t;
      prev_version : int;
      prev_data : Block.t;
    }
  | Meta of { key : string; value : int list; prev : int list option }

(* The journal is real bytes: one checksummed {!Codec.Frame} holding the
   serialized intention, followed by a single commit byte (0x00 pending,
   0x01 committed) — the commit phase is one byte flip, like flipping a
   sector's commit mark.  The scrub's replay/discard verdict comes from
   actually decoding these bytes: a torn append physically truncates the
   record so its frame CRC no longer validates, and decode failure IS
   the discard path — no modeled flag stands in for the arithmetic. *)

module B = Codec.Buf

type t = {
  store : Store.t;
  bf : Block_file.t;
  meta : (string, int list) Hashtbl.t;
  meta_defaults : (string, int list) Hashtbl.t;
  mutable journal : Bytes.t option;
  mutable armed : tear option;
  mutable torn_meta : string option;
  mutable last_scrub : scrub_report option;
  counters : counters;
}

let put_int_list w l =
  B.varint w (List.length l);
  List.iter (fun x -> B.varint w x) l

let encode_intention intent =
  let payload w =
    match intent with
    | Data { block; version; data; prev_version; prev_data } ->
        B.u8 w 1;
        B.varint w block;
        B.varint w version;
        B.raw_string w (Block.to_string data);
        B.varint w prev_version;
        B.raw_string w (Block.to_string prev_data)
    | Meta { key; value; prev } -> (
        B.u8 w 2;
        B.string w key;
        put_int_list w value;
        match prev with
        | None -> B.u8 w 0
        | Some p ->
            B.u8 w 1;
            put_int_list w p)
  in
  let frame = Codec.Frame.encode ~payload in
  let j = Bytes.create (Bytes.length frame + 1) in
  Bytes.blit frame 0 j 0 (Bytes.length frame);
  Bytes.set j (Bytes.length frame) '\000';
  j

let commit_journal t j =
  Bytes.set j (Bytes.length j - 1) '\001';
  t.counters.journal_commits <- t.counters.journal_commits + 1

(* Physically tear a journal record: keep only a prefix of the frame, as
   a crash mid-append would.  The truncated record cannot pass frame
   validation, so [decode_journal] — and therefore the scrub — sees an
   unreadable intention. *)
let tear_journal_bytes j = Bytes.sub j 0 (Bytes.length j / 2)

let get_int_list r =
  let n = B.r_varint r in
  if n < 0 || n > B.remaining r then raise (B.Bad "int-list length exceeds record");
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (B.r_varint r :: acc) in
  go n []

(* [None] when the record is unreadable (torn append): bad frame CRC,
   truncation, or payload garbage.  Otherwise the intention and whether
   the commit byte was set. *)
let decode_journal j =
  let n = Bytes.length j in
  if n < 1 then None
  else
    match Codec.Frame.decode_sub j ~pos:0 ~len:(n - 1) with
    | Error _ -> None
    | Ok r -> (
        match
          (match B.r_u8 r with
          | 1 ->
              let block = B.r_varint r in
              let version = B.r_varint r in
              let data = Block.of_string (B.r_raw_string r Block.size) in
              let prev_version = B.r_varint r in
              let prev_data = Block.of_string (B.r_raw_string r Block.size) in
              Some (Data { block; version; data; prev_version; prev_data })
          | 2 ->
              let key = B.r_string r in
              let value = get_int_list r in
              let prev =
                match B.r_u8 r with
                | 0 -> None
                | 1 -> Some (get_int_list r)
                | _ -> raise (B.Bad "bad option byte")
              in
              Some (Meta { key; value; prev })
          | _ -> None)
        with
        | Some intent when B.at_end r ->
            Some (intent, Bytes.get j (n - 1) = '\001')
        | Some _ | None -> None
        | exception B.Short -> None
        | exception B.Bad _ -> None)

let create ~capacity =
  let store = Store.create ~capacity in
  {
    store;
    bf = Store.block_file store;
    meta = Hashtbl.create 7;
    meta_defaults = Hashtbl.create 7;
    journal = None;
    armed = None;
    torn_meta = None;
    last_scrub = None;
    counters = zero_counters ();
  }

let store t = t.store
let capacity t = Store.capacity t.store
let counters t = t.counters
let last_scrub t = t.last_scrub

(* The checksum lives in the block-file index: CRC-32 over the payload
   bytes in the image, mixed with the version, sealed only at this
   layer's commit points (see the sealing discipline in block_file.mli). *)
let checksum_ok t k = Block_file.checksum_ok t.bf k

let effective_version t k = if checksum_ok t k then Store.version t.store k else 0

let effective_versions t =
  let v = Version_vector.create (capacity t) in
  for k = 0 to capacity t - 1 do
    Version_vector.set v k (effective_version t k)
  done;
  v

let read_verified t k =
  if checksum_ok t k then Some (Store.read t.store k, Store.version t.store k) else None

let bless t k = Block_file.seal t.bf k

let write t k data ~version =
  let stored = Store.version t.store k in
  if version < stored then begin
    if checksum_ok t k then
      invalid_arg
        (Printf.sprintf "Durable_store.write: version regression on block %d (%d < %d)" k version
           stored)
    else
      (* The local copy is corrupt but its version metadata is intact and
         higher than what we are being offered: installing would regress
         below a version this disk is known to have acknowledged.  Stay
         quarantined and wait for data at >= the stored version. *)
      t.counters.refused_installs <- t.counters.refused_installs + 1
  end
  else begin
    let was_corrupt = not (checksum_ok t k) in
    (* Two-phase intention record: append, commit, then apply in place.  A
       crash tears at most one of these phases (see {!crash}); the scrub
       replays a committed-but-torn apply and discards an uncommitted
       append, so the block write and its version update are atomic as a
       pair. *)
    let j =
      encode_intention
        (Data { block = k; version; data; prev_version = stored; prev_data = Store.read t.store k })
    in
    t.journal <- Some j;
    commit_journal t j;
    Store.write t.store k data ~version;
    Block_file.seal t.bf k;
    if was_corrupt then t.counters.repaired_blocks <- t.counters.repaired_blocks + 1
  end

let apply_updates t updates =
  List.iter
    (fun (k, ver, data) ->
      let stored = Store.version t.store k in
      let corrupt = not (checksum_ok t k) in
      if ver > stored || (corrupt && ver = stored) then begin
        Store.write t.store k data ~version:ver;
        Block_file.seal t.bf k;
        if corrupt then t.counters.repaired_blocks <- t.counters.repaired_blocks + 1
      end
      else if corrupt && ver < stored then
        t.counters.refused_installs <- t.counters.refused_installs + 1)
    updates

let verified_blocks_newer_than t v =
  List.filter (fun (k, _, _) -> checksum_ok t k) (Store.blocks_newer_than t.store v)

let set_meta t key value =
  let j = encode_intention (Meta { key; value; prev = Hashtbl.find_opt t.meta key }) in
  t.journal <- Some j;
  commit_journal t j;
  Hashtbl.replace t.meta key value

let get_meta t key = Hashtbl.find_opt t.meta key

let set_meta_default t key value =
  Hashtbl.replace t.meta_defaults key value;
  if not (Hashtbl.mem t.meta key) then Hashtbl.replace t.meta key value

(* Deterministic in-place scramble of the stored image bytes of block
   [k].  The version metadata is left intact — sector decay and torn
   sector writes corrupt data bytes, not the separately journaled
   version table — so the index checksum no longer matches and the
   block is quarantined.  A single CRC-32 input flip always changes the
   digest; the second flip only fires when the first undid a previous
   injection at the same (block, version) position. *)
let corrupt_in_place t k =
  let v = Store.version t.store k in
  let pos = (k * 131 + v * 31) mod Block.size in
  Block_file.flip_byte t.bf k ~pos ~mask:0xA5;
  if checksum_ok t k then Block_file.flip_byte t.bf k ~pos:((pos + 1) mod Block.size) ~mask:0x3C

let inject_bitrot t k =
  corrupt_in_place t k;
  t.counters.bitrot_injected <- t.counters.bitrot_injected + 1

let arm_torn_write ?(mode = Torn_apply) t = t.armed <- Some mode
let armed t = t.armed

(* A torn in-place apply, byte-accurately: the prefix of the new payload
   reached the platter, the suffix still holds pre-image bytes.  The
   tear point is seeded by (block, version); when new and old agree
   across the tear (so the sealed checksum would still validate), fall
   back to a byte scramble — the sector was damaged either way. *)
let tear_apply t block version prev_data =
  let tear = 1 + ((block * 131 + version * 31) mod (Block.size - 1)) in
  Block_file.blit_suffix t.bf block ~from:tear (Block.to_string prev_data);
  if checksum_ok t block then corrupt_in_place t block

let crash t =
  (match (t.armed, t.journal) with
  | Some Torn_apply, Some j -> (
      match decode_journal j with
      | Some (Data { block; version; prev_data; _ }, true) ->
          (* Journal committed, but the in-place apply was torn: stale
             pre-image bytes under an intact version number. *)
          tear_apply t block version prev_data;
          t.counters.torn_writes <- t.counters.torn_writes + 1
      | Some (Meta { key; _ }, true) ->
          t.torn_meta <- Some key;
          t.counters.torn_writes <- t.counters.torn_writes + 1
      | _ -> ())
  | Some Torn_journal, Some j -> (
      (* The journal append itself was torn: the intention never became
         durable, so the apply never reached the platter either.  Restore
         the pre-image and physically truncate the record; the scrub will
         fail to decode it and discard. *)
      match decode_journal j with
      | Some (Data { block; prev_version; prev_data; _ }, _) ->
          Store.demote t.store block;
          Store.write t.store block prev_data ~version:prev_version;
          Block_file.seal t.bf block;
          t.journal <- Some (tear_journal_bytes j);
          t.counters.torn_writes <- t.counters.torn_writes + 1
      | Some (Meta { key; prev; _ }, _) ->
          (match prev with
          | Some v -> Hashtbl.replace t.meta key v
          | None -> Hashtbl.remove t.meta key);
          t.journal <- Some (tear_journal_bytes j);
          t.counters.torn_writes <- t.counters.torn_writes + 1
      | None -> ())
  | _ -> ());
  t.armed <- None

let scrub t =
  t.counters.scrub_runs <- t.counters.scrub_runs + 1;
  let replayed = ref 0 and discarded = ref 0 in
  (match t.journal with
  | Some j -> (
      match decode_journal j with
      | Some (Data { block; version; data; _ }, true)
        when Store.version t.store block = version && not (checksum_ok t block) ->
          (* Committed intention whose apply was torn: replay it exactly. *)
          Store.write t.store block data ~version;
          Block_file.seal t.bf block;
          incr replayed
      | Some (_, false) | None ->
          (* Uncommitted or unreadable (torn append): drop it. *)
          incr discarded
      | Some _ -> ())
  | None -> ());
  t.journal <- None;
  let meta_reset =
    match t.torn_meta with
    | Some key ->
        (match Hashtbl.find_opt t.meta_defaults key with
        | Some d -> Hashtbl.replace t.meta key d
        | None -> Hashtbl.remove t.meta key);
        t.torn_meta <- None;
        t.counters.scrub_meta_reset <- t.counters.scrub_meta_reset + 1;
        [ key ]
    | None -> []
  in
  let quarantined = ref 0 in
  for k = 0 to capacity t - 1 do
    if not (checksum_ok t k) then incr quarantined
  done;
  t.counters.scrub_replayed <- t.counters.scrub_replayed + !replayed;
  t.counters.scrub_discarded <- t.counters.scrub_discarded + !discarded;
  t.counters.scrub_quarantined <- t.counters.scrub_quarantined + !quarantined;
  let report =
    { replayed = !replayed; discarded = !discarded; quarantined = !quarantined; meta_reset }
  in
  t.last_scrub <- Some report;
  report

let replace_disk t =
  Block_file.reset t.bf;
  Hashtbl.reset t.meta;
  (Hashtbl.iter (fun k v -> Hashtbl.replace t.meta k v) t.meta_defaults
  [@lint.allow "hashtbl-order"
    "copies bindings between tables keyed on the same distinct keys; replace is idempotent per key, so order cannot matter"]);
  t.journal <- None;
  t.armed <- None;
  t.torn_meta <- None;
  t.counters.disk_replacements <- t.counters.disk_replacements + 1

let rebless t =
  for k = 0 to capacity t - 1 do
    bless t k
  done;
  t.journal <- None;
  t.armed <- None;
  t.torn_meta <- None
