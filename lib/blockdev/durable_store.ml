type tear = Torn_apply | Torn_journal

type counters = {
  mutable torn_writes : int;
  mutable bitrot_injected : int;
  mutable refused_installs : int;
  mutable repaired_blocks : int;
  mutable scrub_runs : int;
  mutable scrub_replayed : int;
  mutable scrub_discarded : int;
  mutable scrub_quarantined : int;
  mutable scrub_meta_reset : int;
  mutable disk_replacements : int;
}

let zero_counters () =
  {
    torn_writes = 0;
    bitrot_injected = 0;
    refused_installs = 0;
    repaired_blocks = 0;
    scrub_runs = 0;
    scrub_replayed = 0;
    scrub_discarded = 0;
    scrub_quarantined = 0;
    scrub_meta_reset = 0;
    disk_replacements = 0;
  }

let accumulate_counters acc c =
  acc.torn_writes <- acc.torn_writes + c.torn_writes;
  acc.bitrot_injected <- acc.bitrot_injected + c.bitrot_injected;
  acc.refused_installs <- acc.refused_installs + c.refused_installs;
  acc.repaired_blocks <- acc.repaired_blocks + c.repaired_blocks;
  acc.scrub_runs <- acc.scrub_runs + c.scrub_runs;
  acc.scrub_replayed <- acc.scrub_replayed + c.scrub_replayed;
  acc.scrub_discarded <- acc.scrub_discarded + c.scrub_discarded;
  acc.scrub_quarantined <- acc.scrub_quarantined + c.scrub_quarantined;
  acc.scrub_meta_reset <- acc.scrub_meta_reset + c.scrub_meta_reset;
  acc.disk_replacements <- acc.disk_replacements + c.disk_replacements

type scrub_report = {
  replayed : int;
  discarded : int;
  quarantined : int;
  meta_reset : string list;
}

type intention =
  | Data of {
      block : Block.id;
      version : int;
      data : Block.t;
      prev_version : int;
      prev_data : Block.t;
    }
  | Meta of { key : string; value : int list; prev : int list option }

type slot = { intention : intention; mutable committed : bool }

type t = {
  store : Store.t;
  sums : int array;
  meta : (string, int list) Hashtbl.t;
  meta_defaults : (string, int list) Hashtbl.t;
  mutable journal : slot option;
  mutable armed : tear option;
  mutable torn_meta : string option;
  mutable last_scrub : scrub_report option;
  counters : counters;
}

(* FNV-1a over the contents, mixed with the version: a checksum is valid
   only for the (contents, version) pair it was computed over, so a stale
   re-blessing of rotten bytes cannot masquerade as the current version. *)
let checksum data ~version =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    (Block.to_string data);
  !h lxor (version * 0x9e3779b land 0x3FFFFFFF)

let create ~capacity =
  let store = Store.create ~capacity in
  let zero_sum = checksum Block.zero ~version:0 in
  {
    store;
    sums = Array.make capacity zero_sum;
    meta = Hashtbl.create 7;
    meta_defaults = Hashtbl.create 7;
    journal = None;
    armed = None;
    torn_meta = None;
    last_scrub = None;
    counters = zero_counters ();
  }

let store t = t.store
let capacity t = Store.capacity t.store
let counters t = t.counters
let last_scrub t = t.last_scrub

let checksum_ok t k =
  t.sums.(k) = checksum (Store.read t.store k) ~version:(Store.version t.store k)

let effective_version t k = if checksum_ok t k then Store.version t.store k else 0

let effective_versions t =
  let v = Version_vector.create (capacity t) in
  for k = 0 to capacity t - 1 do
    Version_vector.set v k (effective_version t k)
  done;
  v

let read_verified t k =
  if checksum_ok t k then Some (Store.read t.store k, Store.version t.store k) else None

let bless t k =
  t.sums.(k) <- checksum (Store.read t.store k) ~version:(Store.version t.store k)

let write t k data ~version =
  let stored = Store.version t.store k in
  if version < stored then begin
    if checksum_ok t k then
      invalid_arg
        (Printf.sprintf "Durable_store.write: version regression on block %d (%d < %d)" k version
           stored)
    else
      (* The local copy is corrupt but its version metadata is intact and
         higher than what we are being offered: installing would regress
         below a version this disk is known to have acknowledged.  Stay
         quarantined and wait for data at >= the stored version. *)
      t.counters.refused_installs <- t.counters.refused_installs + 1
  end
  else begin
    let was_corrupt = not (checksum_ok t k) in
    let slot =
      {
        intention =
          Data
            {
              block = k;
              version;
              data;
              prev_version = stored;
              prev_data = Store.read t.store k;
            };
        committed = false;
      }
    in
    (* Two-phase intention record: append, commit, then apply in place.  A
       crash tears at most one of these phases (see {!crash}); the scrub
       replays a committed-but-torn apply and discards an uncommitted
       append, so the block write and its version update are atomic as a
       pair. *)
    t.journal <- Some slot;
    slot.committed <- true;
    Store.write t.store k data ~version;
    t.sums.(k) <- checksum data ~version;
    if was_corrupt then t.counters.repaired_blocks <- t.counters.repaired_blocks + 1
  end

let apply_updates t updates =
  List.iter
    (fun (k, ver, data) ->
      let stored = Store.version t.store k in
      let corrupt = not (checksum_ok t k) in
      if ver > stored || (corrupt && ver = stored) then begin
        Store.write t.store k data ~version:ver;
        t.sums.(k) <- checksum data ~version:ver;
        if corrupt then t.counters.repaired_blocks <- t.counters.repaired_blocks + 1
      end
      else if corrupt && ver < stored then
        t.counters.refused_installs <- t.counters.refused_installs + 1)
    updates

let verified_blocks_newer_than t v =
  List.filter (fun (k, _, _) -> checksum_ok t k) (Store.blocks_newer_than t.store v)

let set_meta t key value =
  let slot =
    { intention = Meta { key; value; prev = Hashtbl.find_opt t.meta key }; committed = false }
  in
  t.journal <- Some slot;
  slot.committed <- true;
  Hashtbl.replace t.meta key value

let get_meta t key = Hashtbl.find_opt t.meta key

let set_meta_default t key value =
  Hashtbl.replace t.meta_defaults key value;
  if not (Hashtbl.mem t.meta key) then Hashtbl.replace t.meta key value

(* Deterministic in-place scramble of the stored bytes of block [k].  The
   version metadata is left intact — sector decay and torn sector writes
   corrupt data bytes, not the separately journaled version table — so the
   checksum no longer matches and the block is quarantined. *)
let corrupt_in_place t k =
  let v = Store.version t.store k in
  let data = Store.read t.store k in
  let flip d i mask = Block.set d i (Char.chr (Char.code (Block.get d i) lxor mask)) in
  let pos = (k * 131 + v * 31) mod Block.size in
  let d = ref (flip data pos 0xA5) in
  if checksum !d ~version:v = t.sums.(k) then d := flip !d ((pos + 1) mod Block.size) 0x3C;
  Store.write t.store k !d ~version:v

let inject_bitrot t k =
  corrupt_in_place t k;
  t.counters.bitrot_injected <- t.counters.bitrot_injected + 1

let arm_torn_write ?(mode = Torn_apply) t = t.armed <- Some mode
let armed t = t.armed

let crash t =
  (match (t.armed, t.journal) with
  | Some Torn_apply, Some { intention = Data { block; _ }; committed = true } ->
      (* Journal committed, but the in-place apply was torn: garbage bytes
         on the platter under an intact version number. *)
      corrupt_in_place t block;
      t.counters.torn_writes <- t.counters.torn_writes + 1
  | Some Torn_apply, Some { intention = Meta { key; _ }; committed = true } ->
      t.torn_meta <- Some key;
      t.counters.torn_writes <- t.counters.torn_writes + 1
  | Some Torn_journal, Some slot ->
      (* The journal append itself was torn: the intention never became
         durable, so the apply never reached the platter either.  Restore
         the pre-image; the scrub will discard the half-written record. *)
      slot.committed <- false;
      (match slot.intention with
      | Data { block; prev_version; prev_data; _ } ->
          Store.demote t.store block;
          Store.write t.store block prev_data ~version:prev_version;
          t.sums.(block) <- checksum prev_data ~version:prev_version
      | Meta { key; prev; _ } -> (
          match prev with
          | Some v -> Hashtbl.replace t.meta key v
          | None -> Hashtbl.remove t.meta key));
      t.counters.torn_writes <- t.counters.torn_writes + 1
  | _ -> ());
  t.armed <- None

let scrub t =
  t.counters.scrub_runs <- t.counters.scrub_runs + 1;
  let replayed = ref 0 and discarded = ref 0 in
  (match t.journal with
  | Some { intention = Data { block; version; data; _ }; committed = true }
    when Store.version t.store block = version && not (checksum_ok t block) ->
      (* Committed intention whose apply was torn: replay it exactly. *)
      Store.write t.store block data ~version;
      t.sums.(block) <- checksum data ~version;
      incr replayed
  | Some { committed = false; _ } -> incr discarded
  | _ -> ());
  t.journal <- None;
  let meta_reset =
    match t.torn_meta with
    | Some key ->
        (match Hashtbl.find_opt t.meta_defaults key with
        | Some d -> Hashtbl.replace t.meta key d
        | None -> Hashtbl.remove t.meta key);
        t.torn_meta <- None;
        t.counters.scrub_meta_reset <- t.counters.scrub_meta_reset + 1;
        [ key ]
    | None -> []
  in
  let quarantined = ref 0 in
  for k = 0 to capacity t - 1 do
    if not (checksum_ok t k) then incr quarantined
  done;
  t.counters.scrub_replayed <- t.counters.scrub_replayed + !replayed;
  t.counters.scrub_discarded <- t.counters.scrub_discarded + !discarded;
  t.counters.scrub_quarantined <- t.counters.scrub_quarantined + !quarantined;
  let report =
    { replayed = !replayed; discarded = !discarded; quarantined = !quarantined; meta_reset }
  in
  t.last_scrub <- Some report;
  report

let replace_disk t =
  let zero_sum = checksum Block.zero ~version:0 in
  for k = 0 to capacity t - 1 do
    Store.demote t.store k;
    t.sums.(k) <- zero_sum
  done;
  Hashtbl.reset t.meta;
  (Hashtbl.iter (fun k v -> Hashtbl.replace t.meta k v) t.meta_defaults
  [@lint.allow "hashtbl-order"
    "copies bindings between tables keyed on the same distinct keys; replace is idempotent per key, so order cannot matter"]);
  t.journal <- None;
  t.armed <- None;
  t.torn_meta <- None;
  t.counters.disk_replacements <- t.counters.disk_replacements + 1

let rebless t =
  for k = 0 to capacity t - 1 do
    bless t k
  done;
  t.journal <- None;
  t.armed <- None;
  t.torn_meta <- None
