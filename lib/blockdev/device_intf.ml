(** The ordinary block-device interface.

    This is the boundary the paper's reliable device preserves: a file
    system written against this signature cannot tell one disk from a set
    of replicated server processes.  [Fs.Flat_fs] is a functor over it, and
    both {!Mem_device} (one local disk) and [Blockrep.Reliable_device] (the
    replicated device) implement it. *)

module type S = sig
  type t

  val capacity : t -> int
  (** Number of addressable blocks. *)

  val read_block : t -> Block.id -> Block.t option
  (** [None] when the device cannot currently serve the request (replica
      quorum lost, all servers down...).  A plain disk never says [None]
      for an in-range block. *)

  val write_block : t -> Block.id -> Block.t -> bool
  (** [false] when the write could not be performed. *)
end

(** A device that can also serve a group of blocks in one request.

    The replicated device implements this natively (a whole batch rides
    one quorum round — the group-commit fast path); {!Batched_of_simple}
    lifts any plain [S] by looping, so clients of [BATCHED] run on
    either. *)
module type BATCHED = sig
  include S

  val read_blocks : t -> Block.id list -> Block.t list option
  (** Blocks must be distinct and non-empty; [None] if any id is out of
      range or the group could not be served. *)

  val write_blocks : t -> (Block.id * Block.t) list -> bool
  (** [false] when the group could not be fully committed.  Not
      necessarily atomic: a loop-lifted device (see
      {!Batched_of_simple}) may have applied a prefix. *)
end

(** Lift a plain device to the batched interface by looping.  No
    amortization — each block still costs one device request — but it
    lets batch-aware clients (the write-back cache) run over any [S]. *)
module Batched_of_simple (Dev : S) : BATCHED with type t = Dev.t = struct
  include Dev

  let read_blocks t ks =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | k :: rest -> (
          match Dev.read_block t k with Some d -> go (d :: acc) rest | None -> None)
    in
    if ks = [] then None else go [] ks

  let write_blocks t writes = writes <> [] && List.for_all (fun (k, d) -> Dev.write_block t k d) writes
end
