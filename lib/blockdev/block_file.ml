(* ADR-060-style block file: one flat byte image holding block payloads
   appended in first-write order, plus a compact index of
   (offset, length, version, checksum) per block.

   A block that has never been written is not resident in the image
   (offset -1): it reads as the shared zero block and its index
   checksum covers the zero payload, so it is valid by construction.
   The first write appends a [Block.size] region (the image doubles as
   needed); later writes overwrite that region in place — blocks are
   fixed-size, so regions never move and offsets are stable.

   The index checksum is CRC-32 over the payload bytes mixed with the
   version, so a checksum is valid only for the (payload, version) pair
   it was sealed over.  Crucially, [write] does NOT reseal: payload and
   version land in the image/index and the checksum goes stale until an
   explicit [seal].  The durable layer seals at its commit points;
   anything that bypasses the durable layer (a direct store write, a
   byte fault injected into the image) is caught by verification until
   re-blessed — which is exactly the quarantine discipline the media
   chaos exercises.

   Fault injection operates on actual image bytes ([flip_byte],
   [blit_suffix]), so torn writes and bitrot are byte-accurate: the
   scrub's verdicts come from real checksum arithmetic over the damaged
   region, not from a modeled flag. *)

type t = {
  mutable image : Bytes.t;
  mutable used : int;
  offs : int array; (* -1 = not resident *)
  lens : int array; (* Block.size when resident, 0 otherwise *)
  vers : int array;
  sums : int array;
}

(* Version mixed into the checksum (cf. the sealing comment above). *)
let mix version = version * 0x9e3779b land 0xFFFFFFFF

let zero_block_sum = Codec.Crc.digest_string (Block.to_string Block.zero)

let seal_value t k =
  let crc =
    if t.offs.(k) < 0 then zero_block_sum
    else Codec.Crc.digest_sub t.image ~pos:t.offs.(k) ~len:Block.size
  in
  crc lxor mix t.vers.(k)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Block_file.create: capacity must be positive";
  {
    image = Bytes.empty;
    used = 0;
    offs = Array.make capacity (-1);
    lens = Array.make capacity 0;
    vers = Array.make capacity 0;
    sums = Array.make capacity (zero_block_sum lxor mix 0);
  }

let capacity t = Array.length t.offs

let check t k name =
  if k < 0 || k >= capacity t then
    invalid_arg (Printf.sprintf "Block_file.%s: block %d out of range" name k)

let resident t k = t.offs.(k) >= 0

(* Append a region for block [k] holding its current logical payload
   (the zero block).  Doubling growth keeps appends amortised O(1); the
   image only ever holds regions for blocks actually written or faulted,
   so sparse million-block devices stay sparse. *)
let ensure_resident t k =
  if t.offs.(k) < 0 then begin
    let need = t.used + Block.size in
    if need > Bytes.length t.image then begin
      let cap = max need (max 4096 (2 * Bytes.length t.image)) in
      let image = Bytes.create cap in
      Bytes.blit t.image 0 image 0 t.used;
      t.image <- image
    end;
    Bytes.fill t.image t.used Block.size '\000';
    t.offs.(k) <- t.used;
    t.lens.(k) <- Block.size;
    t.used <- need
  end

let read t k =
  check t k "read";
  if t.offs.(k) < 0 then Block.zero
  else Block.of_string (Bytes.sub_string t.image t.offs.(k) Block.size)

let version t k =
  check t k "version";
  t.vers.(k)

let write t k data ~version =
  check t k "write";
  ensure_resident t k;
  Bytes.blit_string (Block.to_string data) 0 t.image t.offs.(k) Block.size;
  t.vers.(k) <- version

let seal t k =
  check t k "seal";
  t.sums.(k) <- seal_value t k

let checksum_ok t k =
  check t k "checksum_ok";
  t.sums.(k) = seal_value t k

let demote t k =
  check t k "demote";
  if t.offs.(k) >= 0 then Bytes.fill t.image t.offs.(k) Block.size '\000';
  t.vers.(k) <- 0

let reset t =
  t.used <- 0;
  for k = 0 to capacity t - 1 do
    t.offs.(k) <- -1;
    t.lens.(k) <- 0;
    t.vers.(k) <- 0;
    t.sums.(k) <- zero_block_sum lxor mix 0
  done

let flip_byte t k ~pos ~mask =
  check t k "flip_byte";
  if pos < 0 || pos >= Block.size then invalid_arg "Block_file.flip_byte: offset out of range";
  ensure_resident t k;
  let i = t.offs.(k) + pos in
  Bytes.unsafe_set t.image i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.image i) lxor (mask land 0xff)))

let blit_suffix t k ~from s =
  check t k "blit_suffix";
  if from < 0 || from > Block.size then invalid_arg "Block_file.blit_suffix: bad tear point";
  if String.length s <> Block.size then invalid_arg "Block_file.blit_suffix: payload size";
  ensure_resident t k;
  Bytes.blit_string s from t.image (t.offs.(k) + from) (Block.size - from)

let block_equal a ka b kb =
  let byte t k i =
    if t.offs.(k) < 0 then '\000' else Bytes.unsafe_get t.image (t.offs.(k) + i)
  in
  let rec go i = i >= Block.size || (byte a ka i = byte b kb i && go (i + 1)) in
  go 0

let bytes_resident t = t.used
