type t = { blocks : Block.t array; versions : int array }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  { blocks = Array.make capacity Block.zero; versions = Array.make capacity 0 }

let capacity t = Array.length t.blocks

let check t k name =
  if k < 0 || k >= capacity t then invalid_arg (Printf.sprintf "Store.%s: block %d out of range" name k)

let read t k =
  check t k "read";
  t.blocks.(k)

let version t k =
  check t k "version";
  t.versions.(k)

let write t k b ~version =
  check t k "write";
  if version < t.versions.(k) then
    invalid_arg
      (Printf.sprintf "Store.write: version regression on block %d (%d < %d)" k version t.versions.(k));
  t.blocks.(k) <- b;
  t.versions.(k) <- version

let versions t =
  let v = Version_vector.create (capacity t) in
  Array.iteri (fun k ver -> Version_vector.set v k ver) t.versions;
  v

let blocks_newer_than t v =
  if Version_vector.length v <> capacity t then
    invalid_arg "Store.blocks_newer_than: vector length mismatch";
  let rec collect k acc =
    if k < 0 then acc
    else
      let acc =
        if t.versions.(k) > Version_vector.get v k then (k, t.versions.(k), t.blocks.(k)) :: acc
        else acc
      in
      collect (k - 1) acc
  in
  collect (capacity t - 1) []

let apply_updates t updates =
  List.iter
    (fun (k, ver, b) ->
      check t k "apply_updates";
      if ver > t.versions.(k) then begin
        t.blocks.(k) <- b;
        t.versions.(k) <- ver
      end)
    updates

let demote t k =
  check t k "demote";
  t.blocks.(k) <- Block.zero;
  t.versions.(k) <- 0

let equal_contents a b =
  capacity a = capacity b
  && a.versions = b.versions
  && Array.for_all2 Block.equal a.blocks b.blocks
