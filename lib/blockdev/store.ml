(* The version-aware store, rebased on the {!Block_file} byte image:
   payloads are real bytes in a flat file-format image, not in-heap
   values.  The API (and its version-regression contract) is unchanged;
   checksums are the durable layer's business — note that [write] here
   deliberately leaves the block-file index checksum stale (see the
   sealing discipline in block_file.mli), which is what lets
   [Durable_store] detect writes that bypassed its journal. *)

type t = { bf : Block_file.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  { bf = Block_file.create ~capacity }

let block_file t = t.bf
let capacity t = Block_file.capacity t.bf

let check t k name =
  if k < 0 || k >= capacity t then invalid_arg (Printf.sprintf "Store.%s: block %d out of range" name k)

let read t k =
  check t k "read";
  Block_file.read t.bf k

let version t k =
  check t k "version";
  Block_file.version t.bf k

let write t k b ~version =
  check t k "write";
  let stored = Block_file.version t.bf k in
  if version < stored then
    invalid_arg
      (Printf.sprintf "Store.write: version regression on block %d (%d < %d)" k version stored);
  Block_file.write t.bf k b ~version

let versions t =
  let v = Version_vector.create (capacity t) in
  for k = 0 to capacity t - 1 do
    Version_vector.set v k (Block_file.version t.bf k)
  done;
  v

let blocks_newer_than t v =
  if Version_vector.length v <> capacity t then
    invalid_arg "Store.blocks_newer_than: vector length mismatch";
  let rec collect k acc =
    if k < 0 then acc
    else
      let acc =
        let ver = Block_file.version t.bf k in
        if ver > Version_vector.get v k then (k, ver, Block_file.read t.bf k) :: acc else acc
      in
      collect (k - 1) acc
  in
  collect (capacity t - 1) []

let apply_updates t updates =
  List.iter
    (fun (k, ver, b) ->
      check t k "apply_updates";
      if ver > Block_file.version t.bf k then Block_file.write t.bf k b ~version:ver)
    updates

let demote t k =
  check t k "demote";
  Block_file.demote t.bf k

let equal_contents a b =
  capacity a = capacity b
  && (let rec go k =
        k >= capacity a
        || (Block_file.version a.bf k = Block_file.version b.bf k
           && Block_file.block_equal a.bf k b.bf k
           && go (k + 1))
      in
      go 0)
