module Int_set = Types.Int_set
module Durable = Blockdev.Durable_store

type t = { rt : Runtime.t; quorum : Quorum.t; witnesses : Int_set.t }

let is_witness t i = Int_set.mem i t.witnesses

(* A vote as tallied by a coordinator: (site, version, weight). *)
let vote_of_reply block = function
  | from, Wire.Vote_reply { block = b; version; weight; _ } when b = block ->
      Some (from, version, weight)
  | _ -> None

(* Votes carry the effective version: a quarantined copy claims 0 — it can
   prove nothing — so it never wins a tally it could not serve. *)
let local_vote t site_id block =
  let s = Runtime.site t.rt site_id in
  (site_id, Durable.effective_version s.durable block, Quorum.weight t.quorum site_id)

(* Install an update carrying verified data: strictly newer versions as
   always, and data at (or above) a quarantined block's version floor
   repairs it in place.  Witnesses keep only the version number. *)
let absorb t (s : Runtime.site) block version data =
  if
    version > Blockdev.Store.version s.store block
    || ((not (Durable.checksum_ok s.durable block))
       && version >= Blockdev.Store.version s.store block)
  then
    Durable.write s.durable block
      (if is_witness t s.id then Blockdev.Block.zero else data)
      ~version

(* Highest version wins; prefer the local site on ties (free), then the
   lowest id (determinism). *)
let best_vote self votes =
  let better (s1, v1, _) (s2, v2, _) =
    if v1 <> v2 then v1 > v2
    else if s1 = self || s2 = self then s1 = self
    else s1 < s2
  in
  match votes with
  | [] -> invalid_arg "Voting.best_vote: no votes"
  | first :: rest -> List.fold_left (fun acc v -> if better v acc then v else acc) first rest

let coordinator_alive t site_id = (Runtime.site t.rt site_id).state = Types.Available

(* Route around suspected-slow peers: drop breaker-open peers from the
   awaited set — highest id first, deterministically — but only while the
   weight still awaited (survivors plus the coordinator) meets the
   operation's quorum rule, so pruning can never turn a quorum that would
   form into a refusal.  The vote multicast still reaches dropped peers
   and a vote that arrives anyway is tallied; only the waiting stops.
   Safety never rests on the pruning being right: the quorum test runs on
   the votes actually received. *)
let prune_suspects t ~site_id ~quorum_met expected =
  let weight_with set =
    Quorum.weight t.quorum site_id
    + Int_set.fold (fun i acc -> acc + Quorum.weight t.quorum i) set 0
  in
  List.fold_left
    (fun kept peer ->
      if Runtime.breaker_allows t.rt ~coordinator:site_id ~peer then kept
      else
        let kept' = Int_set.remove peer kept in
        if quorum_met (weight_with kept') then kept' else kept)
    expected
    (List.rev (Int_set.elements expected))

let quorum_met_for t purpose =
  match purpose with
  | Net.Message.Write -> Quorum.write_quorum_met t.quorum
  | Net.Message.Read | Net.Message.Recovery | Net.Message.Repair -> Quorum.read_quorum_met t.quorum

let collect_votes ?deadline t ~site_id ~block ~purpose ~k =
  let expected =
    prune_suspects t ~site_id ~quorum_met:(quorum_met_for t purpose) (Runtime.up_peers t.rt site_id)
  in
  let rid =
    Runtime.begin_round ?deadline t.rt ~coordinator:site_id ~expected
      ~on_complete:(fun outcome replies ->
        match outcome with
        | Runtime.Aborted -> k None
        | Runtime.Complete | Runtime.Timeout ->
            if not (coordinator_alive t site_id) then k None
            else begin
              let votes = local_vote t site_id block :: List.filter_map (vote_of_reply block) replies in
              k (Some votes)
            end)
  in
  Runtime.broadcast t.rt ~op:purpose ~from:site_id (Wire.Vote_request { rid; block; purpose })

(* Pull the current copy from [source] and serve it, installing it locally
   when the local site stores data (lazy per-block recovery).  The source
   promised [min_version] in its vote; a transfer below that means its copy
   rotted between vote and transfer, and must not be served as current. *)
let pull_and_serve t ?deadline ~site ~block ~source ~min_version callback =
  let s = Runtime.site t.rt site in
  let rid =
    Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected:(Int_set.singleton source)
      ~on_complete:(fun outcome replies ->
        if not (coordinator_alive t site) then callback (Error Types.Site_not_available)
        else
          match
            ( outcome,
              List.find_map
                (function
                  | _, Wire.Block_transfer { block = b; version; data; _ } when b = block ->
                      Some (version, data)
                  | _ -> None)
                replies )
          with
          | (Runtime.Complete | Runtime.Timeout), Some (version, data)
            when version >= min_version ->
              absorb t s block version data;
              callback (Ok (data, version))
          | (Runtime.Complete | Runtime.Timeout), Some _ | _, None | Runtime.Aborted, _ ->
              callback (Error Types.Timed_out))
  in
  Runtime.send t.rt ~op:Net.Message.Read ~from:site ~dst:source (Wire.Block_request { rid; block })

(* ------------------------------------------------------------------ *)
(* Group commit (batched operations)                                   *)
(*                                                                     *)
(* The k-block analogue of Figures 3 and 4: ONE vote collection covers *)
(* every block of the batch (a batch-vote-request out, batch-vote      *)
(* replies back) and, for writes, ONE update multicast carries all k   *)
(* new (block, version, data) triples.  The quorum test is unchanged — *)
(* weights are per site, not per block — so a batch commits iff a      *)
(* single-block write at the same instant would.                       *)
(* ------------------------------------------------------------------ *)

(* Per-site batched votes: (site, (block, version) assoc, weight). *)
let collect_batch_votes ?deadline t ~site_id ~blocks ~purpose ~k =
  let expected =
    prune_suspects t ~site_id ~quorum_met:(quorum_met_for t purpose) (Runtime.up_peers t.rt site_id)
  in
  let rid =
    Runtime.begin_round ?deadline t.rt ~coordinator:site_id ~expected
      ~on_complete:(fun outcome replies ->
        match outcome with
        | Runtime.Aborted -> k None
        | Runtime.Complete | Runtime.Timeout ->
            if not (coordinator_alive t site_id) then k None
            else begin
              let s = Runtime.site t.rt site_id in
              let local =
                ( site_id,
                  List.map (fun b -> (b, Durable.effective_version s.durable b)) blocks,
                  Quorum.weight t.quorum site_id )
              in
              let remote =
                List.filter_map
                  (function
                    | from, Wire.Batch_vote_reply { votes; weight; _ } -> Some (from, votes, weight)
                    | _ -> None)
                  replies
              in
              k (Some (local :: remote))
            end)
  in
  Runtime.broadcast t.rt ~op:purpose ~from:site_id (Wire.Batch_vote_request { rid; blocks; purpose })

let batch_max_version votes block =
  List.fold_left
    (fun acc (_, bv, _) -> match List.assoc_opt block bv with Some v -> Int.max acc v | None -> acc)
    0 votes

(* Best data site for [block]: highest version among non-witness voters,
   local site preferred on ties, then lowest id — the batched mirror of
   [best_vote]. *)
let batch_best_data_site t self votes block =
  List.fold_left
    (fun acc (site, bv, _) ->
      if is_witness t site then acc
      else
        match List.assoc_opt block bv with
        | None -> acc
        | Some v -> (
            match acc with
            | Some (s0, v0) ->
                let better =
                  if v <> v0 then v > v0 else if site = self || s0 = self then site = self else site < s0
                in
                if better then Some (site, v) else acc
            | None -> Some (site, v)))
    None votes

let write_batch t ?deadline ~site writes callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    let blocks = List.map fst writes in
    collect_batch_votes ?deadline t ~site_id:site ~blocks ~purpose:Net.Message.Write ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes ->
          let weight = List.fold_left (fun acc (_, _, w) -> acc + w) 0 votes in
          if not (Quorum.write_quorum_met t.quorum weight) then callback (Error Types.No_quorum)
          else begin
            let versioned =
              List.map
                (fun (block, data) ->
                  let version = batch_max_version votes block + 1 in
                  Durable.write s.durable block
                    (if is_witness t site then Blockdev.Block.zero else data)
                    ~version;
                  (block, version, data))
                writes
            in
            Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
              (Wire.Batch_update { rid = None; writes = versioned; carried_w = Int_set.empty });
            callback (Ok (List.map (fun (_, v, _) -> v) versioned))
          end)

(* Pull every block the local site cannot serve, grouped into one
   batch-request per distinct source site; assemble the full result in the
   caller's block order once the last source answers. *)
let read_batch t ?deadline ~site ~blocks callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    collect_batch_votes ?deadline t ~site_id:site ~blocks ~purpose:Net.Message.Read ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes ->
          let weight = List.fold_left (fun acc (_, _, w) -> acc + w) 0 votes in
          if not (Quorum.read_quorum_met t.quorum weight) then callback (Error Types.No_quorum)
          else begin
            (* Classify each block: served locally, or pulled from its best
               data site.  Any block whose current version no data site in
               the quorum holds fails the whole batch, as it would fail a
               single-block read. *)
            let classified =
              List.map
                (fun block ->
                  let max_version = batch_max_version votes block in
                  match batch_best_data_site t site votes block with
                  | None -> Error Types.Current_copy_unreachable
                  | Some (_, best_version) when best_version < max_version ->
                      Error Types.Current_copy_unreachable
                  | Some (best_site, best_version) ->
                      let serve_local =
                        (not (is_witness t site))
                        &&
                        match Durable.read_verified s.durable block with
                        | Some (_, v) -> v >= best_version
                        | None ->
                            (* Quarantined local copy.  It can only have won
                               the vote tie at effective version 0 (a rotted
                               never-written block, nothing remote to pull):
                               heal it with the zero block and serve that. *)
                            best_site = site
                            && best_version = 0
                            &&
                            (Durable.write s.durable block Blockdev.Block.zero ~version:0;
                             true)
                      in
                      if serve_local then Ok (block, `Local)
                      else Ok (block, `Pull (best_site, best_version)))
                blocks
            in
            match List.find_map (function Error e -> Some e | Ok _ -> None) classified with
            | Some e -> callback (Error e)
            | None ->
                let classified = List.filter_map Result.to_option classified in
                let pulls =
                  List.filter_map
                    (function b, `Pull (src, v) -> Some (b, src, v) | _ -> None)
                    classified
                in
                let fetched : (Blockdev.Block.id, Blockdev.Block.t * int) Hashtbl.t =
                  Hashtbl.create (List.length pulls)
                in
                let assemble () =
                  callback
                    (Ok
                       (List.map
                          (fun block ->
                            match Hashtbl.find_opt fetched block with
                            | Some dv -> dv
                            | None ->
                                (Blockdev.Store.read s.store block, Blockdev.Store.version s.store block))
                          blocks))
                in
                if pulls = [] then assemble ()
                else if Runtime.past_deadline t.rt deadline then
                  (* The votes consumed the whole budget; the pulls cannot
                     meet it, so issue none. *)
                  callback (Error Types.Timed_out)
                else begin
                  (* One batch-request per distinct source; remember the
                     version each block's source promised in its vote. *)
                  let required = Hashtbl.create (List.length pulls) in
                  List.iter (fun (block, _, v) -> Hashtbl.replace required block v) pulls;
                  let by_source = Hashtbl.create 4 in
                  List.iter
                    (fun (block, src, _) ->
                      let l = try Hashtbl.find by_source src with Not_found -> [] in
                      Hashtbl.replace by_source src (block :: l))
                    pulls;
                  let sources =
                    Hashtbl.fold (fun src bs acc -> (src, List.rev bs) :: acc) by_source []
                    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
                  in
                  let outstanding = ref (List.length sources) in
                  let failed = ref None in
                  let one_done () =
                    decr outstanding;
                    if !outstanding = 0 then
                      match !failed with Some e -> callback (Error e) | None -> assemble ()
                  in
                  List.iter
                    (fun (source, sblocks) ->
                      let rid =
                        Runtime.begin_round ?deadline t.rt ~coordinator:site
                          ~expected:(Int_set.singleton source)
                          ~on_complete:(fun outcome replies ->
                            if not (coordinator_alive t site) then begin
                              failed := Some Types.Site_not_available;
                              one_done ()
                            end
                            else
                              match
                                ( outcome,
                                  List.find_map
                                    (function
                                      | _, Wire.Batch_transfer { payloads; _ } -> Some payloads
                                      | _ -> None)
                                    replies )
                              with
                              | (Runtime.Complete | Runtime.Timeout), Some payloads ->
                                  List.iter
                                    (fun (block, version, data) ->
                                      (* A payload below the version its
                                         source voted means the copy rotted
                                         between vote and transfer: install
                                         nothing and leave the block
                                         unfetched, failing the batch. *)
                                      match Hashtbl.find_opt required block with
                                      | Some v when version >= v ->
                                          absorb t s block version data;
                                          Hashtbl.replace fetched block (data, version)
                                      | Some _ | None -> ())
                                    payloads;
                                  if List.exists (fun b -> not (Hashtbl.mem fetched b)) sblocks then
                                    failed := Some Types.Timed_out;
                                  one_done ()
                              | _, None | Runtime.Aborted, _ ->
                                  failed := Some Types.Timed_out;
                                  one_done ())
                      in
                      Runtime.send t.rt ~op:Net.Message.Read ~from:site ~dst:source
                        (Wire.Batch_request { rid; blocks = sblocks }))
                    sources
                end
          end)

let read t ?deadline ~site ~block callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    collect_votes ?deadline t ~site_id:site ~block ~purpose:Net.Message.Read ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes ->
          let weight = List.fold_left (fun acc (_, _, w) -> acc + w) 0 votes in
          if not (Quorum.read_quorum_met t.quorum weight) then callback (Error Types.No_quorum)
          else begin
            let _, max_version, _ = best_vote site votes in
            let data_votes = List.filter (fun (i, _, _) -> not (is_witness t i)) votes in
            match data_votes with
            | [] -> callback (Error Types.Current_copy_unreachable)
            | _ -> (
                let best_data_site, best_data_version, _ = best_vote site data_votes in
                if best_data_version < max_version then
                  (* A witness proves a newer version exists, but no data
                     site in the quorum holds it. *)
                  callback (Error Types.Current_copy_unreachable)
                else begin
                  match Durable.read_verified s.durable block with
                  | Some (data, local_version)
                    when (not (is_witness t site)) && local_version >= best_data_version ->
                      callback (Ok (data, local_version))
                  | Some _ | None ->
                      if best_data_site <> site then
                        if Runtime.past_deadline t.rt deadline then
                          callback (Error Types.Timed_out)
                        else
                          pull_and_serve t ?deadline ~site ~block ~source:best_data_site
                            ~min_version:best_data_version callback
                      else begin
                        (* The local copy won the vote tie but cannot serve:
                           it is quarantined at effective version 0 (so every
                           data vote was 0 — a rotted never-written block).
                           There is no remote copy to pull; heal it with the
                           zero block it logically holds and serve that. *)
                        Durable.write s.durable block Blockdev.Block.zero ~version:0;
                        callback (Ok (Blockdev.Block.zero, 0))
                      end
                end)
          end)

let write t ?deadline ~site ~block data callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    collect_votes ?deadline t ~site_id:site ~block ~purpose:Net.Message.Write ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes ->
          let weight = List.fold_left (fun acc (_, _, w) -> acc + w) 0 votes in
          if not (Quorum.write_quorum_met t.quorum weight) then callback (Error Types.No_quorum)
          else begin
            let _, max_version, _ = best_vote site votes in
            let version = max_version + 1 in
            Durable.write s.durable block
              (if is_witness t site then Blockdev.Block.zero else data)
              ~version;
            Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
              (Wire.Block_update { rid = None; block; version; data; carried_w = Int_set.empty });
            callback (Ok version)
          end)

let handle t (s : Runtime.site) ~from msg =
  match msg with
  | Wire.Vote_request { rid; block; purpose } ->
      Runtime.send t.rt ~op:purpose ~from:s.id ~dst:from
        (Wire.Vote_reply
           {
             rid;
             block;
             version = Durable.effective_version s.durable block;
             weight = Quorum.weight t.quorum s.id;
             group_size = Quorum.n_sites t.quorum;
           })
  | Wire.Block_update { block; version; data; _ } ->
      (* Witnesses retain only the version number: the data they are
         handed is dropped, which is their whole storage advantage. *)
      absorb t s block version data
  | Wire.Block_request { rid; block } ->
      (* Only data sites are ever asked, so serving unconditionally is
         safe; a witness replying zeroes would indicate a coordinator bug,
         which the assert below would surface in tests.  A quarantined
         copy serves (0, zero) — it can prove nothing — and the requester
         rejects the transfer against the version the vote promised. *)
      assert (not (is_witness t s.id));
      let version = Durable.effective_version s.durable block in
      let data = if version = 0 then Blockdev.Block.zero else Blockdev.Store.read s.store block in
      Runtime.send t.rt ~op:Net.Message.Read ~from:s.id ~dst:from
        (Wire.Block_transfer { rid; block; version; data })
  | Wire.Batch_vote_request { rid; blocks; purpose } ->
      Runtime.send t.rt ~op:purpose ~from:s.id ~dst:from
        (Wire.Batch_vote_reply
           {
             rid;
             votes = List.map (fun b -> (b, Durable.effective_version s.durable b)) blocks;
             weight = Quorum.weight t.quorum s.id;
             group_size = Quorum.n_sites t.quorum;
           })
  | Wire.Batch_update { writes; _ } ->
      List.iter (fun (block, version, data) -> absorb t s block version data) writes
  | Wire.Batch_request { rid; blocks } ->
      assert (not (is_witness t s.id));
      Runtime.send t.rt ~op:Net.Message.Read ~from:s.id ~dst:from
        (Wire.Batch_transfer
           {
             rid;
             payloads =
               List.map
                 (fun b ->
                   let version = Durable.effective_version s.durable b in
                   let data =
                     if version = 0 then Blockdev.Block.zero else Blockdev.Store.read s.store b
                   in
                   (b, version, data))
                 blocks;
           })
  | Wire.Vote_reply { rid; _ } | Wire.Block_transfer { rid; _ }
  | Wire.Batch_vote_reply { rid; _ } | Wire.Batch_transfer { rid; _ } ->
      Runtime.reply t.rt ~rid ~from msg
  | Wire.Write_ack _ | Wire.Recovery_probe _ | Wire.Recovery_reply _ | Wire.Vv_send _
  | Wire.Vv_reply _ | Wire.Group_fix _ | Wire.Batch_ack _ ->
      (* Messages of the other schemes have no meaning under voting; a
         misdirected message is a bug in the sender, not the receiver. *)
      ()

let create rt =
  let config = Runtime.config rt in
  let t = { rt; quorum = config.quorum; witnesses = config.witnesses } in
  Runtime.set_dispatch rt (fun s ~from msg -> handle t s ~from msg);
  t

let on_repair t site_id =
  Runtime.repair_site t.rt site_id (fun (s : Runtime.site) ->
      Runtime.set_state t.rt s.id Types.Available)

let quorum_up t =
  let sites = Runtime.sites t.rt in
  let up =
    Array.fold_left
      (fun acc (s : Runtime.site) -> if s.state = Types.Available then s.id :: acc else acc)
      [] sites
  in
  let weight = Quorum.weight_of t.quorum up in
  let quorum = Quorum.read_quorum_met t.quorum weight && Quorum.write_quorum_met t.quorum weight in
  if (not quorum) || Int_set.is_empty t.witnesses then quorum
  else begin
    (* With witnesses, reads additionally need a reachable data site
       holding the current version of every block. *)
    let n_blocks = (Runtime.config t.rt).n_blocks in
    let ok = ref true in
    for block = 0 to n_blocks - 1 do
      let global_max =
        Array.fold_left
          (fun acc (s : Runtime.site) -> Int.max acc (Durable.effective_version s.durable block))
          0 sites
      in
      let current_data_up =
        List.exists
          (fun i ->
            (not (is_witness t i))
            && Durable.effective_version sites.(i).durable block = global_max)
          up
      in
      if not current_data_up then ok := false
    done;
    !ok
  end
