type t = {
  engine : Sim.Engine.t;
  acc : Util.Stats.Timed.t;
  start : float;
  mutable current : bool;
  mutable transitions : int;
  mutable outages : int;
  mutable down_since : float option;
  durations : Util.Stats.t;
}

let create engine ~initially =
  let now = Sim.Engine.now engine in
  {
    engine;
    acc = Util.Stats.Timed.create ~at:now ~value:(if initially then 1.0 else 0.0);
    start = now;
    current = initially;
    transitions = 0;
    outages = 0;
    down_since = (if initially then None else Some now);
    durations = Util.Stats.create ();
  }

let record t value =
  if value <> t.current then begin
    let now = Sim.Engine.now t.engine in
    t.transitions <- t.transitions + 1;
    if not value then begin
      t.outages <- t.outages + 1;
      t.down_since <- Some now
    end
    else begin
      (match t.down_since with
      | Some since -> Util.Stats.add t.durations (now -. since)
      | None -> ());
      t.down_since <- None
    end;
    t.current <- value;
    Util.Stats.Timed.update t.acc ~at:now ~value:(if value then 1.0 else 0.0)
  end

let current_outage t =
  Option.map (fun since -> Sim.Engine.now t.engine -. since) t.down_since

let availability t = Util.Stats.Timed.average t.acc ~upto:(Sim.Engine.now t.engine)
let time_observed t = Sim.Engine.now t.engine -. t.start
let transitions t = t.transitions
let outages t = t.outages
let outage_durations t = t.durations
let mean_time_to_repair t = Util.Stats.mean t.durations
