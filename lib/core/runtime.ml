module Transport = Net.Network.Make (Wire)
module Int_set = Types.Int_set

type site = {
  id : int;
  durable : Blockdev.Durable_store.t;
  store : Blockdev.Store.t;
  mutable state : Types.site_state;
  mutable w : Types.Int_set.t;
  cache : Wire.site_info option array;
  mutable repairing : bool;
}

(* Journaled-metadata key under which a site's was-available set lives on
   disk; its registered default (everyone) is the conservative fallback a
   scrub restores after a torn metadata write — a too-large W only widens
   the closure a recovery waits for, never fabricates availability. *)
let w_meta_key = "w"

type outcome = Complete | Timeout | Aborted

type round = {
  coordinator : int;
  expected : Types.Int_set.t;
  mutable replies : (int * Wire.t) list;
  mutable answered : Types.Int_set.t;
  mutable timeout_handle : Sim.Engine.handle option;
  on_complete : outcome -> (int * Wire.t) list -> unit;
}

type t = {
  config : Config.t;
  engine : Sim.Engine.t;
  net : Transport.t;
  sites : site array;
  rng : Util.Prng.t;
  mutable next_rid : int;
  rounds : (int, round) Hashtbl.t;
  mutable listeners : (int -> Types.site_state -> unit) list;
  mutable dispatch : site -> from:int -> Wire.t -> unit;
  (* breakers.(coordinator).(peer): that coordinator's view of the peer.
     Allocated only when the robustness config asks for breakers, so the
     default path carries no per-round bookkeeping at all. *)
  breakers : Breaker.t array array option;
  mutable round_probes : (coordinator:int -> deadline:float option -> expected:Types.Int_set.t -> unit) list;
}

let create (config : Config.t) =
  let engine = Sim.Engine.create () in
  let rng = Util.Prng.create config.seed in
  (* A pristine profile installs no injector at all, so the network takes
     the exact legacy delivery path (the default-off no-op guarantee); a
     live profile gets its own seeded stream, leaving the latency and
     workload streams of this seed untouched. *)
  let faults =
    if Net.Faults.is_pristine config.fault_profile then None
    else Some (Net.Faults.of_seed ~seed:(config.seed lxor 0x6661756c74) config.fault_profile)
  in
  let net =
    Transport.create ?faults engine ~mode:config.net_mode ~latency:config.latency
      ~rng:(Util.Prng.split rng) ~n_sites:config.n_sites
  in
  (* Service costs draw from their own seeded stream: installing the model
     must not perturb the latency or workload draws of the same seed. *)
  (match config.service with
  | None -> ()
  | Some model ->
      Transport.install_service net model ~rng:(Util.Prng.create (config.seed lxor 0x73657276)));
  if config.encoded_delivery then begin
    Transport.set_encoded net true;
    Transport.set_quarantine net config.quarantine
  end;
  let breakers =
    match config.robustness.Robustness.breaker with
    | None -> None
    | Some { Robustness.threshold; cooldown } ->
        Some
          (Array.init config.n_sites (fun _ ->
               Array.init config.n_sites (fun _ -> Breaker.create engine ~threshold ~cooldown)))
  in
  (* A frame that fails to decode is evidence against the {e claimed}
     sender's link, so the receiver charges its breaker for that peer:
     a persistently corrupting link trips open exactly like a dead or
     slow one.  Successes stay round-based (see [finish_round]) — a
     clean decode is not yet a served request. *)
  (match breakers with
  | Some m when config.encoded_delivery ->
      Transport.set_reject_hook net (fun ~dst ~from _reject ->
          if dst <> from then Breaker.record_failure m.(dst).(from))
  | _ -> ());
  let make_site id =
    let durable = Blockdev.Durable_store.create ~capacity:config.n_blocks in
    let everyone = List.init config.n_sites Fun.id in
    Blockdev.Durable_store.set_meta_default durable w_meta_key everyone;
    {
      id;
      durable;
      store = Blockdev.Durable_store.store durable;
      state = Types.Available;
      (* Everyone holds version 0 of every block, so initially every site
         "received the most recent write". *)
      w = Int_set.of_list everyone;
      cache = Array.make config.n_sites None;
      repairing = false;
    }
  in
  let t =
    {
      config;
      engine;
      net;
      sites = Array.init config.n_sites make_site;
      rng;
      next_rid = 0;
      rounds = Hashtbl.create 64;
      listeners = [];
      dispatch = (fun _ ~from:_ _ -> ());
      breakers;
      round_probes = [];
    }
  in
  Array.iter
    (fun (s : site) ->
      Transport.register net ~id:s.id (fun ~from payload -> t.dispatch s ~from payload))
    t.sites;
  t

let config t = t.config
let engine t = t.engine
let net t = t.net
let traffic t = Transport.traffic t.net
let n_sites t = t.config.n_sites

let site t i =
  if i < 0 || i >= n_sites t then invalid_arg "Runtime.site: bad site id";
  t.sites.(i)

let sites t = t.sites
let rng t = t.rng

let set_dispatch t f = t.dispatch <- f

let on_state_change t f = t.listeners <- f :: t.listeners

let set_state t i st =
  let s = site t i in
  if s.state <> st then begin
    s.state <- st;
    List.iter (fun f -> f i st) t.listeners
  end

let make_info t i =
  let s = site t i in
  {
    Wire.origin = i;
    state = s.state;
    versions = Blockdev.Store.versions s.store;
    was_available = s.w;
  }

let cache_info t i (info : Wire.site_info) =
  let s = site t i in
  if info.origin <> i then s.cache.(info.origin) <- Some info

let finish_round t rid outcome =
  match Hashtbl.find_opt t.rounds rid with
  | None -> ()
  | Some round ->
      Hashtbl.remove t.rounds rid;
      (match round.timeout_handle with
      | Some h -> Sim.Engine.cancel t.engine h
      | None -> ());
      (* Feed the coordinator's breakers before on_complete so a retry
         issued inside the callback already routes around the silence.
         Answering counts as proof of life even in a round that timed out
         on someone else; an aborted round (coordinator death) says
         nothing about the peers. *)
      (match t.breakers with
      | None -> ()
      | Some m -> (
          match outcome with
          | Aborted -> ()
          | Complete | Timeout ->
              let mine = m.(round.coordinator) in
              Int_set.iter
                (fun p -> if p <> round.coordinator then Breaker.record_success mine.(p))
                round.answered;
              if outcome = Timeout then
                Int_set.iter
                  (fun p ->
                    if p <> round.coordinator && not (Int_set.mem p round.answered) then
                      Breaker.record_failure mine.(p))
                  round.expected));
      round.on_complete outcome (List.rev round.replies)

let past_deadline t deadline =
  match deadline with None -> false | Some d -> Sim.Engine.now t.engine >= d

let on_round_start t f = t.round_probes <- f :: t.round_probes

let begin_round ?deadline t ~coordinator ~expected ~on_complete =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  List.iter (fun f -> f ~coordinator ~deadline ~expected) t.round_probes;
  let round =
    { coordinator; expected; replies = []; answered = Int_set.empty; timeout_handle = None; on_complete }
  in
  Hashtbl.replace t.rounds rid round;
  if past_deadline t deadline then
    (* Callers guard round-opening points with {!past_deadline}, so this is
       the backstop: a round that cannot meet its budget times out on the
       next tick instead of waiting out op_timeout.  (Requests, if any were
       sent, are already moot — their replies would land after the
       deadline.) *)
    ignore
      (Sim.Engine.schedule t.engine ~delay:0.0 (fun () -> finish_round t rid Timeout)
        : Sim.Engine.handle)
  else if Int_set.is_empty expected then
    (* Complete on the next engine tick so callers can finish setting up. *)
    ignore
      (Sim.Engine.schedule t.engine ~delay:0.0 (fun () -> finish_round t rid Complete)
        : Sim.Engine.handle)
  else begin
    (* A deadline clamps the round's patience: waiting longer than the
       budget allows could only produce replies the operation can no
       longer use. *)
    let wait =
      match deadline with
      | None -> t.config.op_timeout
      | Some d -> Float.min t.config.op_timeout (d -. Sim.Engine.now t.engine)
    in
    round.timeout_handle <-
      Some (Sim.Engine.schedule t.engine ~delay:wait (fun () -> finish_round t rid Timeout))
  end;
  rid

let reply t ~rid ~from payload =
  match Hashtbl.find_opt t.rounds rid with
  | None -> ()
  | Some round ->
      if not (Int_set.mem from round.answered) then begin
        round.answered <- Int_set.add from round.answered;
        round.replies <- (from, payload) :: round.replies;
        if Int_set.subset round.expected round.answered then finish_round t rid Complete
      end

let round_active t rid = Hashtbl.mem t.rounds rid

let abort_rounds_of t coordinator =
  (* Sorted so aborts fire in rid order regardless of hash layout:
     abort callbacks are observable (timeouts, retries), and replay
     equality across runs depends on their order. *)
  let to_abort =
    Hashtbl.fold (fun rid r acc -> if r.coordinator = coordinator then rid :: acc else acc) t.rounds []
    |> List.sort Int.compare
  in
  List.iter (fun rid -> finish_round t rid Aborted) to_abort

let set_w t i w =
  let s = site t i in
  s.w <- w;
  Blockdev.Durable_store.set_meta s.durable w_meta_key (Int_set.elements w)

let fail_site t i =
  let s = site t i in
  if s.state <> Types.Failed then begin
    Blockdev.Durable_store.crash s.durable;
    Transport.set_up t.net i false;
    Array.fill s.cache 0 (Array.length s.cache) None;
    s.repairing <- false;
    abort_rounds_of t i;
    set_state t i Types.Failed
  end

let repair_site t i on_repair =
  let s = site t i in
  if s.state = Types.Failed then begin
    (* Power back on: integrity pass over the journal before the protocol
       sees the disk, then reload the disk-resident metadata mirror. *)
    ignore (Blockdev.Durable_store.scrub s.durable : Blockdev.Durable_store.scrub_report);
    (match Blockdev.Durable_store.get_meta s.durable w_meta_key with
    | Some ids -> s.w <- Int_set.of_list ids
    | None -> ());
    Transport.set_up t.net i true;
    on_repair s
  end

let send t ~op ~from ~dst payload = Transport.send t.net ~op ~from ~dst payload
let broadcast t ~op ~from payload = Transport.broadcast t.net ~op ~from payload

let up_peers t i =
  List.fold_left
    (fun acc j ->
      if j <> i && Transport.reachable t.net i j then Int_set.add j acc else acc)
    Int_set.empty
    (Transport.up_sites t.net)

let peers_matching t i pred =
  Int_set.filter (fun j -> pred t.sites.(j)) (up_peers t i)

(* ------------------------------------------------------------------ *)
(* Robustness plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let server t i =
  if i < 0 || i >= n_sites t then invalid_arg "Runtime.server: bad site id";
  Transport.server t.net i

let breaker t ~coordinator ~peer =
  if coordinator < 0 || coordinator >= n_sites t || peer < 0 || peer >= n_sites t then
    invalid_arg "Runtime.breaker: bad site id";
  Option.map (fun m -> m.(coordinator).(peer)) t.breakers

let breaker_allows t ~coordinator ~peer =
  match breaker t ~coordinator ~peer with None -> true | Some b -> Breaker.allows b

let breaker_trips t =
  match t.breakers with
  | None -> 0
  | Some m ->
      Array.fold_left
        (fun acc row -> Array.fold_left (fun acc b -> acc + Breaker.trips b) acc row)
        0 m
