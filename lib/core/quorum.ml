type t = { weights : int array; read_threshold : int; write_threshold : int; total : int }

let create ~weights ?read_threshold ?write_threshold () =
  if Array.length weights = 0 then Error "no sites"
  else if Array.exists (fun w -> w <= 0) weights then Error "weights must be positive"
  else begin
    let total = Array.fold_left ( + ) 0 weights in
    let default = (total / 2) + 1 in
    let read_threshold = Option.value read_threshold ~default in
    let write_threshold = Option.value write_threshold ~default in
    if read_threshold <= 0 || write_threshold <= 0 then Error "thresholds must be positive"
    else if read_threshold + write_threshold <= total then
      Error "read + write thresholds must exceed total weight"
    else if 2 * write_threshold <= total then Error "write threshold must exceed half the total weight"
    else Ok { weights = Array.copy weights; read_threshold; write_threshold; total }
  end

let unsafe ~weights ~read_threshold ~write_threshold =
  if Array.length weights = 0 then invalid_arg "Quorum.unsafe: no sites";
  if Array.exists (fun w -> w <= 0) weights then
    invalid_arg "Quorum.unsafe: weights must be positive";
  let total = Array.fold_left ( + ) 0 weights in
  if read_threshold <= 0 || write_threshold <= 0 then
    invalid_arg "Quorum.unsafe: thresholds must be positive";
  if read_threshold > total || write_threshold > total then
    invalid_arg "Quorum.unsafe: thresholds exceed total weight";
  { weights = Array.copy weights; read_threshold; write_threshold; total }

let majority ~n =
  if n < 1 then invalid_arg "Quorum.majority: need n >= 1";
  let weights = if n mod 2 = 1 then Array.make n 1 else Array.init n (fun i -> if i = 0 then 3 else 2) in
  match create ~weights () with
  | Ok q -> q
  | Error msg -> invalid_arg ("Quorum.majority: " ^ msg)

let n_sites t = Array.length t.weights

let weight t i =
  if i < 0 || i >= Array.length t.weights then invalid_arg "Quorum.weight: bad site";
  t.weights.(i)

let total_weight t = t.total
let read_threshold t = t.read_threshold
let write_threshold t = t.write_threshold

let weight_of t sites = List.fold_left (fun acc s -> acc + weight t s) 0 sites

let read_quorum_met t w = w >= t.read_threshold
let write_quorum_met t w = w >= t.write_threshold

let pp ppf t =
  Format.fprintf ppf "quorum(weights=[%s], r=%d, w=%d, total=%d)"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.weights)))
    t.read_threshold t.write_threshold t.total
