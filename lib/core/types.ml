module Int_set = Set.Make (Int)

type site_state = Failed | Comatose | Available

let site_state_to_string = function
  | Failed -> "failed"
  | Comatose -> "comatose"
  | Available -> "available"

let pp_site_state ppf s = Format.pp_print_string ppf (site_state_to_string s)

type scheme = Voting | Available_copy | Naive_available_copy | Dynamic_voting

let scheme_to_string = function
  | Voting -> "voting"
  | Available_copy -> "available-copy"
  | Naive_available_copy -> "naive-available-copy"
  | Dynamic_voting -> "dynamic-voting"

let all_schemes = [ Voting; Available_copy; Naive_available_copy; Dynamic_voting ]

let pp_scheme ppf s = Format.pp_print_string ppf (scheme_to_string s)

type failure_reason = No_quorum | Site_not_available | Timed_out | Current_copy_unreachable | Overloaded

let failure_reason_to_string = function
  | No_quorum -> "no quorum"
  | Site_not_available -> "local site not available"
  | Timed_out -> "timed out"
  | Current_copy_unreachable -> "no reachable data site holds the current version"
  | Overloaded -> "overloaded: admission refused or queue full"

type read_result = (Blockdev.Block.t * int, failure_reason) result
type write_result = (int, failure_reason) result
type batch_read_result = ((Blockdev.Block.t * int) list, failure_reason) result
type batch_write_result = (int list, failure_reason) result

let int_set_of_list l = Int_set.of_list l

let pp_int_set ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  Int_set.iter
    (fun x ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.fprintf ppf "%d" x)
    s;
  Format.fprintf ppf "}"
