(** The client-side robustness stack's switchboard.

    One record collects the four tail-latency defences so that a cluster,
    stub or device can be built with any subset on.  {!off} — every field
    disabled — is the construction-time default throughout, and is
    guaranteed bit-identical to the pre-robustness code paths: no extra
    rng draws, no extra events, no wire-traffic change (the twin-run test
    in [test_robustness.ml] holds the guarantee down to message counts). *)

type hedge = {
  quantile : float;
      (** arm the hedge at this quantile of observed read latency
          (strictly between 0 and 1; 0.9 hedges the slowest decile) *)
  floor : float;
      (** minimum hedge delay, and the delay used before enough latency
          samples exist — keeps cold starts from hedging every read *)
}

type breaker = {
  threshold : int;  (** consecutive round failures that trip (>= 1) *)
  cooldown : float;  (** virtual time open before a half-open probe *)
}

type t = {
  deadlines : bool;
      (** propagate each operation's budget into protocol rounds, which
          clamp their timeouts to it and refuse to start past it *)
  op_budget : float option;
      (** per-operation wall budget (virtual time) measured from the
          moment the stub accepts the operation; [None] with [deadlines]
          on falls back to the retry policy's deadline.  Requires
          [deadlines = true]. *)
  hedge : hedge option;
      (** hedged reads (AC/NAC only): if the local serve has not completed
          by the delay, race a single remote copy against it *)
  breaker : breaker option;  (** per-peer circuit breakers at every coordinator *)
  admission : int option;
      (** device-level admission control: at most this many client
          operations in flight, the rest refused fast with [Overloaded] *)
}

val off : t
(** Everything disabled — the bit-identical default. *)

val enabled : t -> bool
val validate : t -> (t, string) result
val pp : Format.formatter -> t -> unit
