(** Shared machinery of the three consistency protocols.

    A runtime owns the simulation engine, the network, and one {!site}
    record per replica.  Protocols implement coordinator logic as
    {e rounds}: broadcast (or send) a request, declare which sites are
    expected to answer, and get a completion callback once every expected
    reply arrived — or the timeout fired, or the coordinator itself died.

    The expected-responder set is computed from the network's current
    liveness, which models the perfect failure detection that the paper's
    fail-stop, reliable, partition-free environment provides; the timeout
    exists only to resolve races where a site fails between request and
    reply. *)

module Transport : sig
  include module type of Net.Network.Make (Wire)
end

type site = {
  id : int;
  durable : Blockdev.Durable_store.t;
      (** the site's disk, with checksums and intention journal; faults are
          injected and scrubbed here *)
  store : Blockdev.Store.t;
      (** [Durable_store.store durable] — the underlying block/version
          arrays, for unchecked reads.  All writes must go through
          [durable]. *)
  mutable state : Types.site_state;
  mutable w : Types.Int_set.t;
      (** was-available set; persistent across failures (kept on disk with
          the blocks, exactly as the version numbers are) *)
  cache : Wire.site_info option array;
      (** freshest self-description heard from each peer; volatile.  Doubles
          as the record of which peers are known comatose, which drives the
          deferred recovery replies sent on becoming available. *)
  mutable repairing : bool;  (** a version-vector exchange is in flight *)
}

type outcome =
  | Complete  (** every expected reply arrived *)
  | Timeout  (** the timeout fired first; replies may be partial *)
  | Aborted  (** the coordinator failed mid-round *)

type t

val create : Config.t -> t
(** Builds engine, network and sites (all initially [Available] with zeroed
    stores); installs the network receive handlers.  {!set_dispatch} must be
    called before any message can be processed. *)

val config : t -> Config.t
val engine : t -> Sim.Engine.t
val net : t -> Transport.t
val traffic : t -> Net.Traffic.t
val n_sites : t -> int
val site : t -> int -> site
val sites : t -> site array
val rng : t -> Util.Prng.t

val set_dispatch : t -> (site -> from:int -> Wire.t -> unit) -> unit
(** Install the protocol's message handler.  It runs only at sites that are
    up at delivery time. *)

val on_state_change : t -> (int -> Types.site_state -> unit) -> unit
(** Subscribe to site state transitions (monitor, liveness tracking). *)

val set_state : t -> int -> Types.site_state -> unit
(** Change a site's protocol state and notify subscribers.  No-op if the
    state is unchanged. *)

val make_info : t -> int -> Wire.site_info
(** Snapshot a site's self-description for recovery messages. *)

val cache_info : t -> int -> Wire.site_info -> unit
(** Record [info] in site [i]'s peer cache (keyed by [info.origin]). *)

(** {1 Rounds} *)

val begin_round :
  ?deadline:float ->
  t ->
  coordinator:int ->
  expected:Types.Int_set.t ->
  on_complete:(outcome -> (int * Wire.t) list -> unit) ->
  int
(** Open a round and return its rid.  Completion fires asynchronously (via
    the engine) even when [expected] is empty.  The reply list is in arrival
    order.

    [deadline] (absolute virtual time) clamps the round's timeout to
    [min op_timeout (deadline - now)]: replies landing after the budget
    would be useless, so the round gives up exactly when the operation
    must.  An already-expired deadline times the round out on the next
    tick — callers should guard with {!past_deadline} and not send at
    all, which the round-start probes let tests enforce. *)

val past_deadline : t -> float option -> bool
(** [past_deadline t (Some d)] iff the clock reached [d].  [None] never
    expires. *)

val on_round_start :
  t -> (coordinator:int -> deadline:float option -> expected:Types.Int_set.t -> unit) -> unit
(** Subscribe to round openings (test instrumentation: the deadline
    property test asserts no round with a deadline ever opens at or past
    it).  Probes fire synchronously inside {!begin_round}, before any
    request is sent. *)

val reply : t -> rid:int -> from:int -> Wire.t -> unit
(** Record a reply for a round; ignored when the round is gone (late reply
    after timeout — harmless by design). *)

val round_active : t -> int -> bool

(** {1 Failure injection} *)

val set_w : t -> int -> Types.Int_set.t -> unit
(** Update a site's was-available set, both the in-memory mirror and the
    journaled on-disk copy (so a crash between a commit and this metadata
    write is caught by the scrub, not silently survived). *)

val fail_site : t -> int -> unit
(** Fail-stop: the durable store takes its crash (an armed torn write
    fires here), the network stops delivering to and from the site, its
    volatile state (peer cache, interests, in-flight rounds it
    coordinates) is lost, and its protocol state becomes [Failed].  Store,
    version numbers and was-available set survive on disk.  No-op when
    already failed. *)

val repair_site : t -> int -> (site -> unit) -> unit
(** Bring a failed site back up: run the durable store's recovery scrub
    (replay/discard torn intentions, count quarantined blocks), reload the
    was-available set from disk, then run the protocol's [on_repair] hook
    (which decides whether the site becomes comatose or immediately
    available).  No-op when the site is not failed. *)

(** {1 Messaging shortcuts} *)

val send : t -> op:Net.Message.operation -> from:int -> dst:int -> Wire.t -> unit
val broadcast : t -> op:Net.Message.operation -> from:int -> Wire.t -> unit

val up_peers : t -> int -> Types.Int_set.t
(** Sites up and reachable from the given site, excluding it. *)

val peers_matching : t -> int -> (site -> bool) -> Types.Int_set.t
(** Up, reachable peers additionally satisfying a predicate on their site
    record (e.g. protocol state availability). *)

(** {1 Robustness plumbing}

    All of it dormant unless the config enables the corresponding feature:
    without a service model {!server} is [None] everywhere, without a
    breaker config {!breaker} is [None] and {!breaker_allows} always
    [true]. *)

val server : t -> int -> Sim.Server.t option
(** Site [i]'s work queue, when the config installed a service model. *)

val breaker : t -> coordinator:int -> peer:int -> Breaker.t option
(** [coordinator]'s breaker for [peer], when breakers are configured. *)

val breaker_allows : t -> coordinator:int -> peer:int -> bool
(** Whether the coordinator should currently send to the peer; [true]
    when breakers are off.  Advisory — call sites must keep the scheme's
    safety rule satisfied regardless. *)

val breaker_trips : t -> int
(** Total closed-to-open transitions across all coordinator/peer pairs. *)
