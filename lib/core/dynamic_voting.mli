(** Dynamic voting at the block level (extension; cf. reference [10]).

    Static majority voting with [n] copies dies as soon as [⌈(n+1)/2⌉]
    sites are down.  Dynamic voting instead takes majorities of the
    {e last update group}: alongside each block's version number every
    site records the cardinality of the group that installed it.  An
    operation is allowed when, among the reachable sites, those holding
    the highest version form a strict majority {e of that recorded
    group}; each successful write then re-forms the group from every
    reachable site.  The group thus shrinks as sites fail (two sites,
    then the majority of those two...) and grows back as they return,
    letting service survive failure sequences that leave far fewer than
    half of the original sites up.

    Safety comes from the chain-intersection argument: every new group is
    a strict majority of the holders of the previous version, so any two
    operation quorums on the same block intersect in a current copy.  We
    use strict majorities only (no distinguished-site tie-break), so a
    group of two cannot shrink to one.

    As with static voting at the block level, there is no recovery
    protocol: a repaired site simply resumes voting, its stale blocks are
    outvoted, adopted back into the group (and rewritten) by the next
    write, or pulled on demand by a read. *)

type t

val create : Runtime.t -> t
(** Installs the protocol's message handler.  Every block's initial group
    is the full site set (everyone holds version 0). *)

val read :
  t -> ?deadline:float -> site:int -> block:Blockdev.Block.id -> (Types.read_result -> unit) -> unit
(** Serve a read under a last-group majority; pulls the current copy if
    the local one is stale.  Reads do not adjust groups.

    [deadline] (absolute virtual time) propagates into the vote and pull
    rounds, suppresses the internal No_quorum retry once expired, and
    makes an expired entry fail [Timed_out] without issuing anything. *)

val write :
  t ->
  ?deadline:float ->
  site:int ->
  block:Blockdev.Block.id ->
  Blockdev.Block.t ->
  (Types.write_result -> unit) ->
  unit
(** Write under a last-group majority; the new group is the set of
    reachable sites (all of which receive the block). *)

val on_repair : t -> int -> unit
(** No recovery: the site becomes available immediately. *)

val group_of : t -> int -> Blockdev.Block.id -> int
(** [group_of t site block]: the last-update-group cardinality site
    [site] records for [block] (for tests and monitoring). *)

val service_available : t -> bool
(** The monitor predicate: for {e every} block, the up sites holding its
    globally newest version form a strict majority of its recorded
    group. *)
