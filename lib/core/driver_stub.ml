type t = {
  cluster : Cluster.t;
  home : int;
  policy : Retry.policy;
  stats : Retry.stats;
  mutable requests : int;
  mutable site_attempts : int;
  mutable failovers : int;
}

let create ?(home = 0) ?policy cluster =
  if home < 0 || home >= Cluster.n_sites cluster then invalid_arg "Driver_stub.create: bad home site";
  let policy =
    match policy with
    | Some p -> p
    | None -> Retry.default_policy ~unit:(Cluster.config cluster).Config.op_timeout ()
  in
  (match Retry.validate policy with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Driver_stub.create: bad retry policy: " ^ e));
  {
    cluster;
    home;
    policy;
    stats = Retry.create_stats ();
    requests = 0;
    site_attempts = 0;
    failovers = 0;
  }

let home t = t.home
let requests t = t.requests
let site_attempts t = t.site_attempts
let failovers t = t.failovers
let retry_stats t = t.stats
let policy t = t.policy

(* One rotation: try the home site first, then the remaining sites once in
   id order when the local server cannot serve.  The home never migrates —
   a transient outage must not permanently strand requests elsewhere; the
   next request probes the home again and service resumes the moment it
   recovers.  Other error kinds (quorum loss) are global, so failing over
   would not help and the error is surfaced to the retry layer. *)
let rotation t attempt =
  let n = Cluster.n_sites t.cluster in
  let rec go tried site =
    t.site_attempts <- t.site_attempts + 1;
    match attempt site with
    | Error Types.Site_not_available when tried < n - 1 ->
        t.failovers <- t.failovers + 1;
        go (tried + 1) ((site + 1) mod n)
    | result -> result
  in
  go 0 t.home

(* A full failed rotation may still be transient (messages lost to the
   wire, a repair in flight), so the bounded-backoff layer wraps it. *)
let forward t attempt =
  t.requests <- t.requests + 1;
  Retry.run t.policy ~engine:(Cluster.engine t.cluster) ~stats:t.stats (fun ~attempt:_ ->
      rotation t attempt)

let read_block t block = forward t (fun site -> Cluster.read_sync t.cluster ~site ~block)

let write_block t block data = forward t (fun site -> Cluster.write_sync t.cluster ~site ~block data)
