type op_view = {
  kind : Cluster.Observe.kind;
  block : Blockdev.Block.id;
  site : int;
  invoked : float;
  responded : float;
  payload : Blockdev.Block.t option;
  version : int option;
  error : Types.failure_reason option;
}

type t = {
  cluster : Cluster.t;
  home : int;
  policy : Retry.policy;
  settle : float;
  rng : Random.State.t option;  (** drives decorrelated retry jitter *)
  budget : float option;
      (** per-operation virtual-time budget; each request's absolute
          deadline is [now + budget], propagated end-to-end *)
  stats : Retry.stats;
  mutable requests : int;
  mutable batch_requests : int;
  mutable batched_blocks : int;
  mutable site_attempts : int;
  mutable failovers : int;
  mutable last_served : int;
  mutable last_tried : int;
  mutable observers : (op_view -> unit) list;
}

let create ?(home = 0) ?policy ?settle ?rng cluster =
  if home < 0 || home >= Cluster.n_sites cluster then invalid_arg "Driver_stub.create: bad home site";
  let policy =
    match policy with
    | Some p -> p
    | None -> Retry.default_policy ~unit:(Cluster.config cluster).Config.op_timeout ()
  in
  (match Retry.validate policy with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Driver_stub.create: bad retry policy: " ^ e));
  (* Surface the Decorrelated-without-rng mistake at construction, not on
     the first forwarded request deep inside a simulation run. *)
  (match (policy.Retry.jitter, rng) with
  | Retry.Decorrelated, None ->
      invalid_arg "Driver_stub.create: policy jitter = Decorrelated requires ~rng"
  | Retry.Decorrelated, Some _ | Retry.No_jitter, _ -> ());
  let robustness = (Cluster.config cluster).Config.robustness in
  let budget =
    if not robustness.Robustness.deadlines then None
    else
      (* An explicit op budget, or the retry policy's own deadline — the
         point past which the stub would abandon the operation anyway, so
         sub-requests beyond it are provably useless. *)
      Some (Option.value robustness.Robustness.op_budget ~default:policy.Retry.deadline)
  in
  let settle =
    match settle with
    | None -> (Cluster.config cluster).Config.op_timeout
    | Some s ->
        if s < 0.0 then invalid_arg "Driver_stub.create: settle must be non-negative";
        s
  in
  {
    cluster;
    home;
    policy;
    settle;
    rng;
    budget;
    stats = Retry.create_stats ();
    requests = 0;
    batch_requests = 0;
    batched_blocks = 0;
    site_attempts = 0;
    failovers = 0;
    last_served = home;
    last_tried = home;
    observers = [];
  }

let home t = t.home
let deadline_budget t = t.budget
let requests t = t.requests
let batch_requests t = t.batch_requests
let batched_blocks t = t.batched_blocks
let site_attempts t = t.site_attempts
let failovers t = t.failovers
let retry_stats t = t.stats
let policy t = t.policy
let settle t = t.settle
let last_served t = t.last_served
let add_observer t f = t.observers <- t.observers @ [ f ]

(* One rotation: try the home site first, then the remaining sites once in
   id order when the local server cannot serve.  The home never migrates —
   a transient outage must not permanently strand requests elsewhere; the
   next request probes the home again and service resumes the moment it
   recovers.  Other error kinds (quorum loss) are global, so failing over
   would not help and the error is surfaced to the retry layer.

   Before handing a request to an *available* site other than the one that
   served last, the stub lets in-flight traffic drain for [settle] virtual
   time: the copy schemes propagate updates fire-and-forget, so without the
   barrier a failover (or the return home after one) could read a copy that
   has not yet received the previous server's update — or worse, write at
   it and mint a colliding version.  Down sites are probed without waiting;
   failing over past a corpse must stay fast. *)
let rotation t attempt =
  let n = Cluster.n_sites t.cluster in
  let engine = Cluster.engine t.cluster in
  let rec go tried site =
    if
      site <> t.last_served && t.settle > 0.0
      && Cluster.site_state t.cluster site = Types.Available
    then Cluster.run_until t.cluster (Sim.Engine.now engine +. t.settle);
    t.site_attempts <- t.site_attempts + 1;
    t.last_tried <- site;
    match attempt site with
    | Error Types.Site_not_available when tried < n - 1 ->
        t.failovers <- t.failovers + 1;
        go (tried + 1) ((site + 1) mod n)
    | Ok _ as ok ->
        t.last_served <- site;
        ok
    | Error _ as err -> err
  in
  go 0 t.home

(* A full failed rotation may still be transient (messages lost to the
   wire, a repair in flight), so the bounded-backoff layer wraps it.  With
   deadlines enabled the absolute deadline is fixed here, at the top of
   the operation, and flows through every rotation, retry and protocol
   round below; once it passes, no further rotation is attempted. *)
let forward t attempt =
  t.requests <- t.requests + 1;
  let engine = Cluster.engine t.cluster in
  let deadline = Option.map (fun b -> Sim.Engine.now engine +. b) t.budget in
  let retryable reason =
    Retry.transient reason
    && (match deadline with None -> true | Some d -> Sim.Engine.now engine < d)
  in
  Retry.run t.policy ~engine ~stats:t.stats ?rng:t.rng ~retryable (fun ~attempt:_ ->
      rotation t (attempt ~deadline))

let notify t view = List.iter (fun f -> f view) t.observers

(* observers carry closures, so structural comparison (even against [])
   is off the table; test emptiness by pattern instead. *)
let has_observers t = match t.observers with [] -> false | _ :: _ -> true

let read_block t block =
  let engine = Cluster.engine t.cluster in
  let invoked = Sim.Engine.now engine in
  let result = forward t (fun ~deadline site -> Cluster.read_sync ?deadline t.cluster ~site ~block) in
  if has_observers t then begin
    let responded = Sim.Engine.now engine in
    let view =
      match result with
      | Ok (data, version) ->
          { kind = Cluster.Observe.Read; block; site = t.last_served; invoked; responded;
            payload = Some data; version = Some version; error = None }
      | Error e ->
          { kind = Cluster.Observe.Read; block; site = t.last_tried; invoked; responded;
            payload = None; version = None; error = Some e }
    in
    notify t view
  end;
  result

let write_block t block data =
  let engine = Cluster.engine t.cluster in
  let invoked = Sim.Engine.now engine in
  let result = forward t (fun ~deadline site -> Cluster.write_sync ?deadline t.cluster ~site ~block data) in
  if has_observers t then begin
    let responded = Sim.Engine.now engine in
    let view =
      match result with
      | Ok version ->
          { kind = Cluster.Observe.Write; block; site = t.last_served; invoked; responded;
            payload = Some data; version = Some version; error = None }
      | Error e ->
          { kind = Cluster.Observe.Write; block; site = t.last_tried; invoked; responded;
            payload = Some data; version = None; error = Some e }
    in
    notify t view
  end;
  result

(* Batched forwarding: the whole group rides one rotation — failover,
   settle barrier and bounded retries are paid once per batch, not once
   per block.  Observers still see one event per block, after the batch
   resolves, so history checkers need not know about batching. *)

let notify_batch_reads t ~invoked blocks result =
  if has_observers t then begin
    let responded = Sim.Engine.now (Cluster.engine t.cluster) in
    match result with
    | Ok results ->
        List.iter2
          (fun block (data, version) ->
            notify t
              { kind = Cluster.Observe.Read; block; site = t.last_served; invoked; responded;
                payload = Some data; version = Some version; error = None })
          blocks results
    | Error e ->
        List.iter
          (fun block ->
            notify t
              { kind = Cluster.Observe.Read; block; site = t.last_tried; invoked; responded;
                payload = None; version = None; error = Some e })
          blocks
  end

let notify_batch_writes t ~invoked writes result =
  if has_observers t then begin
    let responded = Sim.Engine.now (Cluster.engine t.cluster) in
    match result with
    | Ok versions ->
        List.iter2
          (fun (block, data) version ->
            notify t
              { kind = Cluster.Observe.Write; block; site = t.last_served; invoked; responded;
                payload = Some data; version = Some version; error = None })
          writes versions
    | Error e ->
        List.iter
          (fun (block, data) ->
            notify t
              { kind = Cluster.Observe.Write; block; site = t.last_tried; invoked; responded;
                payload = Some data; version = None; error = Some e })
          writes
  end

let read_blocks t blocks =
  let invoked = Sim.Engine.now (Cluster.engine t.cluster) in
  t.batch_requests <- t.batch_requests + 1;
  t.batched_blocks <- t.batched_blocks + List.length blocks;
  let result = forward t (fun ~deadline site -> Cluster.read_blocks_sync ?deadline t.cluster ~site ~blocks) in
  notify_batch_reads t ~invoked blocks result;
  result

let write_blocks t writes =
  let invoked = Sim.Engine.now (Cluster.engine t.cluster) in
  t.batch_requests <- t.batch_requests + 1;
  t.batched_blocks <- t.batched_blocks + List.length writes;
  let result = forward t (fun ~deadline site -> Cluster.write_blocks_sync ?deadline t.cluster ~site writes) in
  notify_batch_writes t ~invoked writes result;
  result
