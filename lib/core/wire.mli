(** On-the-wire protocol messages for all three schemes.

    Each constructor corresponds to one "high-level transmission" of the
    Section 5 analysis; {!category} is the accounting bucket.  [rid] values
    correlate replies with the coordinator round that awaits them. *)

type site_info = {
  origin : int;  (** whose information this is *)
  state : Types.site_state;
  versions : Blockdev.Version_vector.t;
  was_available : Types.Int_set.t;
}
(** A site's self-description, carried in recovery probes and replies so
    comatose sites can evaluate the select of Figures 5 and 6. *)

type t =
  | Vote_request of { rid : int; block : Blockdev.Block.id; purpose : Net.Message.operation }
      (** voting: collect version + weight for one block; [purpose] tells
          repliers which operation class to account their votes to *)
  | Vote_reply of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      weight : int;
      group_size : int;
          (** dynamic voting: cardinality of the last update group the
              voter knows for this block; static voting sends the total
              site count and ignores it on receipt *)
    }
  | Block_update of {
      rid : int option;
          (** [Some] when the sender expects acknowledgements (available
              copy writes); [None] for voting updates and naive writes *)
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
      carried_w : Types.Int_set.t;
          (** the writer's current was-available estimate (Section 3.2's
              delayed propagation); empty and ignored outside AC *)
    }
  | Write_ack of { rid : int; block : Blockdev.Block.id }
  | Block_request of { rid : int; block : Blockdev.Block.id }
      (** voting read: pull a newer copy from the best respondent *)
  | Block_transfer of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
    }
  | Recovery_probe of { rid : int; info : site_info }
      (** "who is out there, and in what state?" — carries the prober's own
          info so operational receivers can update their caches too *)
  | Recovery_reply of { rid : int; info : site_info }
  | Vv_send of { rid : int; versions : Blockdev.Version_vector.t; w_of_sender : Types.Int_set.t }
      (** recovering site ships its version vector (W piggybacked, cf. the
          [send(t, W_s)] of Figure 5) *)
  | Vv_reply of {
      rid : int;
      versions : Blockdev.Version_vector.t;
      updates : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      w_of_source : Types.Int_set.t;
    }
  | Group_fix of { block : Blockdev.Block.id; version : int; group : Types.Int_set.t }
      (** dynamic voting: after an update round in which some tentative
          group member failed to acknowledge, the coordinator publishes
          the group that actually applied the write, so recorded
          cardinalities match reality *)
  | Batch_vote_request of {
      rid : int;
      blocks : Blockdev.Block.id list;
      purpose : Net.Message.operation;
    }
      (** group commit: one vote collection covering every block of a
          batch — the k-block analogue of [Vote_request], accounted to the
          same category with a size that grows with the batch *)
  | Batch_vote_reply of {
      rid : int;
      votes : (Blockdev.Block.id * int) list;  (** (block, version) pairs *)
      weight : int;
      group_size : int;
    }
  | Batch_update of {
      rid : int option;  (** as in [Block_update]: [Some] iff acked (AC) *)
      writes : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      carried_w : Types.Int_set.t;
    }
      (** group commit: one update multicast carrying a whole batch of
          (block, version, data) writes *)
  | Batch_ack of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_request of { rid : int; blocks : Blockdev.Block.id list }
      (** batched voting read: pull every listed block from one source *)
  | Batch_transfer of { rid : int; payloads : (Blockdev.Block.id * int * Blockdev.Block.t) list }

val category : t -> Net.Message.category
(** Batch messages account to the category of their single-block
    counterpart ([Batch_update] to [Block_update], and so on): a batch is
    {e one} high-level transmission whose {!size} grows with the blocks it
    carries, which is exactly what keeps the Section 5 message counts
    honest under group commit. *)

val size : t -> int
(** Estimated wire size in bytes: a fixed header plus the natural encoding
    of the payload (4 bytes per integer or set member, the full
    {!Blockdev.Block.size} per block carried, 4 bytes per version-vector
    component).  Drives the byte-level traffic comparison of Section 5. *)

val rid : t -> int option
(** The correlation id, when the message participates in a round. *)

val describe : t -> string
(** One-line rendering for logs. *)
