(** On-the-wire protocol messages for all three schemes.

    Each constructor corresponds to one "high-level transmission" of the
    Section 5 analysis; {!category} is the accounting bucket.  [rid] values
    correlate replies with the coordinator round that awaits them. *)

type site_info = {
  origin : int;  (** whose information this is *)
  state : Types.site_state;
  versions : Blockdev.Version_vector.t;
  was_available : Types.Int_set.t;
}
(** A site's self-description, carried in recovery probes and replies so
    comatose sites can evaluate the select of Figures 5 and 6. *)

type t =
  | Vote_request of { rid : int; block : Blockdev.Block.id; purpose : Net.Message.operation }
      (** voting: collect version + weight for one block; [purpose] tells
          repliers which operation class to account their votes to *)
  | Vote_reply of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      weight : int;
      group_size : int;
          (** dynamic voting: cardinality of the last update group the
              voter knows for this block; static voting sends the total
              site count and ignores it on receipt *)
    }
  | Block_update of {
      rid : int option;
          (** [Some] when the sender expects acknowledgements (available
              copy writes); [None] for voting updates and naive writes *)
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
      carried_w : Types.Int_set.t;
          (** the writer's current was-available estimate (Section 3.2's
              delayed propagation); empty and ignored outside AC *)
    }
  | Write_ack of { rid : int; block : Blockdev.Block.id }
  | Block_request of { rid : int; block : Blockdev.Block.id }
      (** voting read: pull a newer copy from the best respondent *)
  | Block_transfer of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
    }
  | Recovery_probe of { rid : int; info : site_info }
      (** "who is out there, and in what state?" — carries the prober's own
          info so operational receivers can update their caches too *)
  | Recovery_reply of { rid : int; info : site_info }
  | Vv_send of { rid : int; versions : Blockdev.Version_vector.t; w_of_sender : Types.Int_set.t }
      (** recovering site ships its version vector (W piggybacked, cf. the
          [send(t, W_s)] of Figure 5) *)
  | Vv_reply of {
      rid : int;
      versions : Blockdev.Version_vector.t;
      updates : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      w_of_source : Types.Int_set.t;
    }
  | Group_fix of { block : Blockdev.Block.id; version : int; group : Types.Int_set.t }
      (** dynamic voting: after an update round in which some tentative
          group member failed to acknowledge, the coordinator publishes
          the group that actually applied the write, so recorded
          cardinalities match reality *)
  | Batch_vote_request of {
      rid : int;
      blocks : Blockdev.Block.id list;
      purpose : Net.Message.operation;
    }
      (** group commit: one vote collection covering every block of a
          batch — the k-block analogue of [Vote_request], accounted to the
          same category with a size that grows with the batch *)
  | Batch_vote_reply of {
      rid : int;
      votes : (Blockdev.Block.id * int) list;  (** (block, version) pairs *)
      weight : int;
      group_size : int;
    }
  | Batch_update of {
      rid : int option;  (** as in [Block_update]: [Some] iff acked (AC) *)
      writes : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      carried_w : Types.Int_set.t;
    }
      (** group commit: one update multicast carrying a whole batch of
          (block, version, data) writes *)
  | Batch_ack of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_request of { rid : int; blocks : Blockdev.Block.id list }
      (** batched voting read: pull every listed block from one source *)
  | Batch_transfer of { rid : int; payloads : (Blockdev.Block.id * int * Blockdev.Block.t) list }

val category : t -> Net.Message.category
(** Batch messages account to the category of their single-block
    counterpart ([Batch_update] to [Block_update], and so on): a batch is
    {e one} high-level transmission whose {!size} grows with the blocks it
    carries, which is exactly what keeps the Section 5 message counts
    honest under group commit. *)

val size : t -> int
(** {e Measured} wire size in bytes: the exact length of the frame
    {!encode} produces, computed by a counting pass over the encoder
    arms — no allocation, no shared scratch state (safe from sharded
    bench lanes).  Drives the byte-level traffic comparison of
    Section 5. *)

val model_size : t -> int
(** The legacy analytic size model (32-byte header, 4 bytes per integer
    or set member, full {!Blockdev.Block.size} per block carried).
    Retained only as a cross-check against {!size}; the documented
    per-category tolerance is asserted in [test_traffic_counts]. *)

(** {2 Binary codec}

    Each message is one checksummed {!Codec.Frame} whose payload is a
    varint constructor tag followed by the fields in declaration order
    (varint integers, single-byte enums, length-prefixed collections,
    raw [Block.size]-byte block payloads). *)

module Tag : sig
  (** One constant constructor per {!t} constructor — the codec's wire
      discriminant.  The decoder dispatches over [Tag.t] with one arm
      per tag and no catch-all, which blockrep-lint's wire-exhaustive
      rule checks alongside the compiler. *)
  type t =
    | Vote_request
    | Vote_reply
    | Block_update
    | Write_ack
    | Block_request
    | Block_transfer
    | Recovery_probe
    | Recovery_reply
    | Vv_send
    | Vv_reply
    | Group_fix
    | Batch_vote_request
    | Batch_vote_reply
    | Batch_update
    | Batch_ack
    | Batch_request
    | Batch_transfer

  val to_int : t -> int
  (** Stable on-the-wire tag code, starting at 1. *)

  val of_int : int -> t option
end

val tag_of : t -> Tag.t
(** The codec tag of a message (lint-checked: every constructor mapped
    exactly once). *)

val encode : t -> Bytes.t
(** Encode into one checksummed frame: a counting pass sizes the
    buffer, a writing pass fills it — a single allocation, no
    intermediate values. *)

type decode_error =
  | Frame_error of Codec.Frame.error
      (** Truncated/oversized frame, bad magic, or CRC mismatch —
          detected before any payload byte is interpreted. *)
  | Bad_tag of int  (** Unknown constructor tag. *)
  | Malformed of string
      (** Payload structure invalid: truncated fields, bad enum codes,
          over-long lists, or trailing payload bytes. *)

val decode_error_to_string : decode_error -> string

val decode : Bytes.t -> (t, decode_error) result
(** Decode exactly one frame.  Never raises: every corruption mode maps
    to a typed error, which is what lets the durable journal and the
    byte-accurate media chaos rely on decode verdicts. *)

val reject_of_error : decode_error -> Net.Message.reject
(** Map a decoder error onto the transport's codec-agnostic reject
    taxonomy (frame envelope errors to their classes, [Bad_tag] and
    [Malformed] to theirs). *)

val decode_frame : Bytes.t -> (t, Net.Message.reject) result
(** [decode] with errors mapped through {!reject_of_error} — this is
    what makes [Wire] satisfy {!Net.Network.PAYLOAD} for encoded
    delivery. *)

val rid : t -> int option
(** The correlation id, when the message participates in a round. *)

val describe : t -> string
(** One-line rendering for logs. *)
