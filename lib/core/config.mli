(** Cluster configuration. *)

type t = private {
  scheme : Types.scheme;
  n_sites : int;  (** number of sites holding copies (>= 1) *)
  n_blocks : int;  (** capacity of the reliable device, in blocks *)
  net_mode : Net.Network.mode;
  latency : Util.Dist.t;  (** one-hop message latency *)
  op_timeout : float;
      (** how long a coordinator waits for outstanding replies before acting
          on what it has; must exceed two latencies or operations would time
          out even when everyone is up *)
  quorum : Quorum.t;  (** voting only; ignored by the copy schemes *)
  witnesses : Types.Int_set.t;
      (** voting only: sites that vote (version number + weight) but store
          no data — Pâris's witness refinement of weighted voting (the
          paper's reference [10] family).  Witnesses cut storage to a
          version vector; reads must additionally reach a data site holding
          the current version.  Must leave at least one data site. *)
  track_liveness : bool;
      (** available-copy only.  [false] (the paper's Section 3.2 protocol):
          was-available sets are refreshed only by writes and repairs.
          [true]: available sites also observe peer failures, modelling the
          idealised algorithm whose availability the Figure 7 chain computes
          — the last site to fail then always knows it can recover alone. *)
  seed : int;  (** master seed for every random stream of the cluster *)
  fault_profile : Net.Faults.profile;
      (** default per-link fault injection ({!Net.Faults.pristine} unless
          overridden): with the pristine profile no injector is installed
          at all, so the cluster is bit-identical to one built before the
          fault layer existed *)
  service : Net.Service_model.t option;
      (** per-site service model: [None] (the default) keeps sites
          infinitely fast, exactly the paper's environment; [Some m] puts
          a bounded work queue in front of every site (see
          {!Net.Service_model}), enabling overload and gray failure *)
  robustness : Robustness.t;
      (** client-side robustness stack (deadlines, hedged reads, circuit
          breakers, admission control); {!Robustness.off} by default *)
  sync_profile : Blockdev.Sync_cost.profile option;
      (** stable-storage sync-write cost charged at client-visible journal
          commit points (see {!Blockdev.Sync_cost}): [None] (the default)
          charges nothing — the paper's free-disk environment,
          bit-identical to pre-model behaviour *)
  encoded_delivery : bool;
      (** [true] routes every message through its encoded {!Wire} frame and
          the hardened decode-at-ingress path; [false] (the default) is the
          legacy in-heap delivery, bit-identical to before the codec became
          the transport.  Required for byte-level corruption injection:
          {!make} refuses a profile with non-trivial corruption when this
          is off, because it would silently inject nothing. *)
  quarantine : Net.Network.quarantine;
      (** poison-frame quarantine policy of the hardened ingress (only
          consulted in encoded mode);
          {!Net.Network.default_quarantine} by default *)
}

val make :
  scheme:Types.scheme ->
  n_sites:int ->
  ?n_blocks:int ->
  ?net_mode:Net.Network.mode ->
  ?latency:Util.Dist.t ->
  ?op_timeout:float ->
  ?quorum:Quorum.t ->
  ?witnesses:int list ->
  ?track_liveness:bool ->
  ?seed:int ->
  ?fault_profile:Net.Faults.profile ->
  ?service:Net.Service_model.t ->
  ?robustness:Robustness.t ->
  ?sync_profile:Blockdev.Sync_cost.profile ->
  ?encoded_delivery:bool ->
  ?quarantine:Net.Network.quarantine ->
  unit ->
  (t, string) result
(** Defaults: 64 blocks, multicast, constant latency 0.5 time units,
    timeout 8 latencies, majority quorum, no witnesses,
    [track_liveness = false], seed 42, pristine fault profile, no service
    model, robustness off, no sync-write cost, in-heap delivery with the
    default quarantine policy. *)

val make_exn :
  scheme:Types.scheme ->
  n_sites:int ->
  ?n_blocks:int ->
  ?net_mode:Net.Network.mode ->
  ?latency:Util.Dist.t ->
  ?op_timeout:float ->
  ?quorum:Quorum.t ->
  ?witnesses:int list ->
  ?track_liveness:bool ->
  ?seed:int ->
  ?fault_profile:Net.Faults.profile ->
  ?service:Net.Service_model.t ->
  ?robustness:Robustness.t ->
  ?sync_profile:Blockdev.Sync_cost.profile ->
  ?encoded_delivery:bool ->
  ?quarantine:Net.Network.quarantine ->
  unit ->
  t
(** Like {!make}; raises [Invalid_argument] instead. *)

val pp : Format.formatter -> t -> unit
