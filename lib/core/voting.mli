(** Majority consensus voting at the block level (Section 3.1).

    Reads and writes each collect votes — version number plus weight — from
    all reachable sites and proceed only when the configured quorum is met.
    Because any quorum contains a most-current copy, a repaired site rejoins
    service {e immediately} with no recovery traffic: out-of-date blocks are
    detected by their version numbers and refreshed lazily, when the file
    system actually asks for them.  This lazy, per-block recovery is the
    paper's block-level refinement of classic weighted voting.

    Deviation noted for traffic accounting: refreshing a stale local copy
    costs us a block-request plus a block-transfer (2 messages) where the
    paper charges 1; the difference only arises on reads at stale sites,
    which never occurs in the failure-free runs behind Figures 11–12. *)

type t

val create : Runtime.t -> t
(** Builds the protocol over a runtime and installs its message handler. *)

val read :
  t -> ?deadline:float -> site:int -> block:Blockdev.Block.id -> (Types.read_result -> unit) -> unit
(** Figure 3.  The callback fires (via the engine) with the block contents,
    or [No_quorum] / [Site_not_available] / [Timed_out].

    [deadline] (absolute virtual time) propagates into every round the
    operation opens: rounds stop waiting at the deadline, and follow-up
    sub-requests (the block pull after the votes) are not issued at all
    once it has passed — the operation fails [Timed_out] instead.  Same
    contract on every operation below. *)

val write :
  t ->
  ?deadline:float ->
  site:int ->
  block:Blockdev.Block.id ->
  Blockdev.Block.t ->
  (Types.write_result -> unit) ->
  unit
(** Figure 4: collect votes, take max version + 1, push the block to every
    reachable site. *)

(** {1 Group commit}

    The k-block analogue of Figures 3 and 4: one vote collection covers
    every block of the batch, and a batched write pushes all k new
    versions in a single update multicast.  A batch therefore costs the
    same {e number} of transmissions as one single-block operation (their
    sizes grow with k), which is the whole amortization argument of the
    group-commit fast path.  Blocks must be distinct; a batch of one is
    semantically identical to the single-block operation. *)

val read_batch :
  t ->
  ?deadline:float ->
  site:int ->
  blocks:Blockdev.Block.id list ->
  (Types.batch_read_result -> unit) ->
  unit
(** One vote round for all [blocks]; blocks whose current copy the local
    site holds are served locally, the rest are pulled with one
    batch-request per distinct source site.  Results are in the order of
    [blocks].  Fails as a whole with the first per-block failure a
    single-block read would report. *)

val write_batch :
  t ->
  ?deadline:float ->
  site:int ->
  (Blockdev.Block.id * Blockdev.Block.t) list ->
  (Types.batch_write_result -> unit) ->
  unit
(** One vote round, per-block max version + 1, one batch-update multicast.
    Returns the new versions in batch order. *)

val on_repair : t -> int -> unit
(** Voting recovery: none.  The site simply becomes available again. *)

val quorum_up : t -> bool
(** Whether the sites currently up can form both quorums — the availability
    predicate A_V measures. *)
