type t = {
  engine : Sim.Engine.t;
  threshold : int;
  cooldown : float;
  mutable consecutive_failures : int;
  mutable opened_at : float option;
  mutable trips : int;
}

type state = Closed | Open | Half_open

let create engine ~threshold ~cooldown =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be at least 1";
  if cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown must be positive";
  { engine; threshold; cooldown; consecutive_failures = 0; opened_at = None; trips = 0 }

let state t =
  match t.opened_at with
  | None -> Closed
  | Some at -> if Sim.Engine.now t.engine >= at +. t.cooldown then Half_open else Open

let allows t = match state t with Closed | Half_open -> true | Open -> false

let record_success t =
  t.consecutive_failures <- 0;
  t.opened_at <- None

let record_failure t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match state t with
  | Open -> ()
  | Half_open ->
      (* The trial round failed: straight back to open, cooldown restarted.
         Not a fresh trip — the peer never recovered. *)
      t.opened_at <- Some (Sim.Engine.now t.engine)
  | Closed ->
      if t.consecutive_failures >= t.threshold then begin
        t.opened_at <- Some (Sim.Engine.now t.engine);
        t.trips <- t.trips + 1
      end

let trips t = t.trips
let consecutive_failures t = t.consecutive_failures

let state_to_string = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"
let pp ppf t = Format.pp_print_string ppf (state_to_string (state t))
