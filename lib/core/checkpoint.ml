module Store = Blockdev.Store
module Block = Blockdev.Block
module Int_set = Types.Int_set

let magic = "BRCKPT1\n"

let ( let* ) = Result.bind

let state_to_char = function Types.Failed -> 'F' | Types.Comatose -> 'C' | Types.Available -> 'A'

let state_of_char = function
  | 'F' -> Some Types.Failed
  | 'C' -> Some Types.Comatose
  | 'A' -> Some Types.Available
  | _ -> None

let scheme_code = function
  | Types.Voting -> 'V'
  | Types.Available_copy -> 'A'
  | Types.Naive_available_copy -> 'N'
  | Types.Dynamic_voting -> 'D'

let write_u32 oc v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  output_bytes oc b

let read_u32 ic =
  match really_input_string ic 4 with
  | exception End_of_file -> Error "truncated checkpoint"
  | s ->
      let v = Int32.to_int (Bytes.get_int32_be (Bytes.of_string s) 0) in
      if v < 0 then Error "corrupt integer field" else Ok v

let read_char ic =
  match input_char ic with exception End_of_file -> Error "truncated checkpoint" | c -> Ok c

let save cluster path =
  let rt = Cluster.runtime cluster in
  let config = Cluster.config cluster in
  if config.Config.scheme = Types.Dynamic_voting then
    (* The dynamic scheme keeps per-block group records outside the store;
       checkpointing it is not supported yet. *)
    Error "checkpointing a dynamic-voting cluster is not supported"
  else
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          output_char oc (scheme_code config.Config.scheme);
          write_u32 oc config.Config.n_sites;
          write_u32 oc config.Config.n_blocks;
          Array.iter
            (fun (s : Runtime.site) ->
              output_char oc (state_to_char s.Runtime.state);
              write_u32 oc (Int_set.cardinal s.Runtime.w);
              Int_set.iter (write_u32 oc) s.Runtime.w;
              for k = 0 to config.Config.n_blocks - 1 do
                write_u32 oc (Store.version s.Runtime.store k);
                output_string oc (Block.to_string (Store.read s.Runtime.store k))
              done)
            (Runtime.sites rt);
          Ok ())

let restore cluster path =
  let rt = Cluster.runtime cluster in
  let config = Cluster.config cluster in
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let* () =
            match really_input_string ic (String.length magic) with
            | exception End_of_file -> Error "truncated checkpoint"
            | m when m <> magic -> Error "not a checkpoint file"
            | _ -> Ok ()
          in
          let* code = read_char ic in
          if code <> scheme_code config.Config.scheme then Error "checkpoint is for another scheme"
          else
            let* n_sites = read_u32 ic in
            let* n_blocks = read_u32 ic in
            if n_sites <> config.Config.n_sites || n_blocks <> config.Config.n_blocks then
              Error "checkpoint geometry does not match the cluster"
            else begin
              (* Refuse to restore over used state: versions never regress. *)
              let fresh =
                Array.for_all
                  (fun (s : Runtime.site) ->
                    let rec all_zero k =
                      k >= n_blocks || (Store.version s.Runtime.store k = 0 && all_zero (k + 1))
                    in
                    all_zero 0)
                  (Runtime.sites rt)
              in
              if not fresh then Error "restore target must be a freshly created cluster"
              else begin
                let rec restore_site i =
                  if i >= n_sites then Ok ()
                  else begin
                    let s = Runtime.site rt i in
                    let* state_char = read_char ic in
                    let* state =
                      match state_of_char state_char with
                      | Some st -> Ok st
                      | None -> Error "corrupt site state"
                    in
                    let* w_count = read_u32 ic in
                    let rec read_w k acc =
                      if k = 0 then Ok acc
                      else
                        let* v = read_u32 ic in
                        read_w (k - 1) (Int_set.add v acc)
                    in
                    let* w = read_w w_count Int_set.empty in
                    let rec read_blocks k =
                      if k >= n_blocks then Ok ()
                      else
                        let* version = read_u32 ic in
                        match really_input_string ic Block.size with
                        | exception End_of_file -> Error "truncated checkpoint"
                        | raw ->
                            if version > 0 then Store.write s.Runtime.store k (Block.of_string raw) ~version;
                            read_blocks (k + 1)
                    in
                    let* () = read_blocks 0 in
                    (* Blocks were installed behind the durable layer's back;
                       re-bless so checksums cover the restored contents, then
                       route W through set_w so the on-disk record matches. *)
                    Blockdev.Durable_store.rebless s.Runtime.durable;
                    Runtime.set_w rt i w;
                    Runtime.Transport.set_up (Runtime.net rt) i (state <> Types.Failed);
                    Runtime.set_state rt i state;
                    restore_site (i + 1)
                  end
                in
                restore_site 0
              end
            end)
