(** The reliable device: a replicated block device behind the ordinary
    device interface.

    This is the paper's headline artifact — "a device [that] appears to the
    file system as an ordinary block-structured device, but is implemented
    as a set of server processes on several sites".  It satisfies
    [Blockdev.Device_intf.S], so any client of that signature (notably
    [Fs.Flat_fs]) runs on it unchanged. *)

type t

val create : ?home:int -> ?policy:Retry.policy -> ?settle:float -> Cluster.t -> t
(** Wrap a cluster (any scheme) as a device, forwarding through a
    {!Driver_stub} homed at [home] with the given retry [policy] and
    failover settle barrier [settle] (see {!Driver_stub.create} for the
    defaults). *)

val of_config : ?policy:Retry.policy -> ?settle:float -> Config.t -> t
(** Convenience: build the cluster too. *)

val cluster : t -> Cluster.t
val stub : t -> Driver_stub.t

include Blockdev.Device_intf.S with type t := t

val read_blocks : t -> Blockdev.Block.id list -> Blockdev.Block.t list option
(** Batched read through one stub rotation (see {!Driver_stub.read_blocks}).
    [None] if any id is out of range, the list is empty, or the batch
    failed; blocks must be distinct. *)

val write_blocks : t -> (Blockdev.Block.id * Blockdev.Block.t) list -> bool
(** Batched write-behind target of the write-back cache: the whole dirty
    group commits in one stub rotation. *)

val last_error : t -> Types.failure_reason option
(** Reason for the most recent [None]/[false] answer, for diagnostics. *)

(** {1 Degradation statistics}

    A structured snapshot of how hard the device is working to stay
    reliable: request and failover counts from the stub, retry/timeout
    counters from the {!Retry} layer, fault-injection totals from the
    network, and the most recent errors.  All zeros on a healthy,
    fault-free cluster. *)

type degradation = {
  requests : int;  (** logical block requests forwarded *)
  site_attempts : int;  (** per-site service attempts (incl. probes) *)
  failovers : int;  (** requests moved on from the home site *)
  retries : int;  (** rotations re-attempted after backoff *)
  succeeded : int;  (** requests that completed with a success *)
  recovered : int;  (** requests that failed first and then succeeded *)
  timeouts : int;  (** requests abandoned at the retry deadline *)
  gave_up : int;  (** requests abandoned after exhausting attempts *)
  rejected : int;  (** requests refused by the retryable predicate *)
  faults_injected : int;  (** total network fault injections, 0 if none *)
  last_errors : (float * string) list;  (** newest first *)
}

val degradation : t -> degradation

val degradation_conserved : degradation -> bool
(** Counter conservation: with no request in flight every forwarded
    request terminated exactly one way —
    [requests = succeeded + timeouts + gave_up + rejected]. *)

val pp_degradation : Format.formatter -> degradation -> unit
