(** The reliable device: a replicated block device behind the ordinary
    device interface.

    This is the paper's headline artifact — "a device [that] appears to the
    file system as an ordinary block-structured device, but is implemented
    as a set of server processes on several sites".  It satisfies
    [Blockdev.Device_intf.S], so any client of that signature (notably
    [Fs.Flat_fs]) runs on it unchanged. *)

type t

val create :
  ?home:int ->
  ?policy:Retry.policy ->
  ?settle:float ->
  ?rng:Random.State.t ->
  ?admission:int ->
  Cluster.t ->
  t
(** Wrap a cluster (any scheme) as a device, forwarding through a
    {!Driver_stub} homed at [home] with the given retry [policy] and
    failover settle barrier [settle] (see {!Driver_stub.create} for the
    defaults).  [rng] drives decorrelated retry jitter (mandatory when the
    policy asks for it).  [admission] bounds the number of in-flight
    asynchronous operations (default: the cluster config's
    [robustness.admission]); beyond it, {!read_block_async} and
    {!write_block_async} fail fast with [Overloaded] instead of piling
    more load onto a struggling cluster.  Raises [Invalid_argument] if the
    limit is below 1. *)

val of_config :
  ?policy:Retry.policy -> ?settle:float -> ?rng:Random.State.t -> ?admission:int -> Config.t -> t
(** Convenience: build the cluster too. *)

val cluster : t -> Cluster.t
val stub : t -> Driver_stub.t

include Blockdev.Device_intf.S with type t := t

val read_blocks : t -> Blockdev.Block.id list -> Blockdev.Block.t list option
(** Batched read through one stub rotation (see {!Driver_stub.read_blocks}).
    [None] if any id is out of range, the list is empty, or the batch
    failed; blocks must be distinct. *)

val write_blocks : t -> (Blockdev.Block.id * Blockdev.Block.t) list -> bool
(** Batched write-behind target of the write-back cache: the whole dirty
    group commits in one stub rotation. *)

val last_error : t -> Types.failure_reason option
(** Reason for the most recent [None]/[false] answer, for diagnostics. *)

(** {1 Asynchronous operations}

    Callback-style operations for open-loop load generation (the brown-out
    benchmark): the caller schedules arrivals on the engine and each
    operation settles through the cluster without driving the clock
    itself.  Async operations skip the stub's failover rotation and retry
    loop — they are issued once, at the stub's home site, with the stub's
    deadline budget applied — because an open-loop client must never block
    the virtual clock.  They pass through the admission gate: when
    [admission] in-flight operations are already pending the operation is
    {e shed}, failing immediately with [Overloaded].

    Raise [Invalid_argument] on an out-of-range block id (unlike the sync
    facade, which answers [None]/[false]): the async path is bench-facing
    and a bad id there is a harness bug.

    Caveat: if the home site crashes while operations are queued in its
    entry queue, those callbacks never fire and the in-flight count leaks;
    open-loop campaigns should inject overload and gray slowness, not site
    crashes, on the async path. *)

val read_block_async : t -> Blockdev.Block.id -> (Types.read_result -> unit) -> unit
val write_block_async : t -> Blockdev.Block.id -> Blockdev.Block.t -> (Types.write_result -> unit) -> unit

val in_flight : t -> int
(** Asynchronous operations currently pending. *)

(** {1 Degradation statistics}

    A structured snapshot of how hard the device is working to stay
    reliable: request and failover counts from the stub, retry/timeout
    counters from the {!Retry} layer, overload/gray-failure counters from
    the cluster's robustness stack, fault-injection totals from the
    network, and the most recent errors.  All zeros on a healthy,
    fault-free cluster. *)

type degradation = {
  requests : int;  (** logical block requests: sync + async + shed *)
  site_attempts : int;  (** per-site service attempts (incl. probes) *)
  failovers : int;  (** requests moved on from the home site *)
  retries : int;  (** rotations re-attempted after backoff *)
  succeeded : int;  (** requests that completed with a success *)
  recovered : int;  (** requests that failed first and then succeeded *)
  timeouts : int;  (** requests abandoned at a retry or op deadline *)
  gave_up : int;  (** requests abandoned after exhausting attempts *)
  rejected : int;  (** refused by the retryable predicate or [Overloaded] downstream *)
  shed : int;  (** async operations refused at the device admission gate *)
  hedged : int;  (** reads that issued a hedge at a second site *)
  hedge_wins : int;  (** hedged reads whose hedge answered first *)
  breaker_trips : int;  (** closed-to-open circuit-breaker transitions *)
  messages_shed : int;  (** protocol messages dropped at full site queues *)
  faults_injected : int;  (** total network fault injections, 0 if none *)
  frames_rejected : int;  (** frames the hardened ingress refused to decode *)
  frames_quarantined : int;  (** frames discarded undecoded under quarantine *)
  frames_retransmitted : int;  (** link-layer redeliveries of rejected frames *)
  quarantine_trips : int;  (** links that entered poison-frame quarantine *)
  corrupted_deliveries : int;  (** deliveries the injector actually damaged *)
  corrupt_rejected : int;  (** ... of which the decoder caught *)
  corrupt_quarantined : int;  (** ... of which quarantine discarded undecoded *)
  corrupt_survived : int;  (** ... of which still decoded (identity splice) *)
  last_errors : (float * string) list;  (** newest first *)
}

val degradation : t -> degradation

val degradation_conserved : degradation -> bool
(** Counter conservation: with no operation in flight every operation
    terminated exactly one way —
    [requests = succeeded + timeouts + gave_up + rejected + shed]. *)

val wire_conserved : degradation -> bool
(** The ingress conservation identity: every corruption the injector
    counted was classified exactly one way —
    [corrupted_deliveries = corrupt_rejected + corrupt_quarantined +
    corrupt_survived].  (Frame rejects themselves surface to the client
    as retries/timeouts, already inside {!degradation_conserved}.) *)

val pp_degradation : Format.formatter -> degradation -> unit
