type hedge = { quantile : float; floor : float }
type breaker = { threshold : int; cooldown : float }

type t = {
  deadlines : bool;
  op_budget : float option;
  hedge : hedge option;
  breaker : breaker option;
  admission : int option;
}

let off = { deadlines = false; op_budget = None; hedge = None; breaker = None; admission = None }

let enabled t =
  t.deadlines || Option.is_some t.hedge || Option.is_some t.breaker || Option.is_some t.admission

let validate t =
  match (t.op_budget, t.hedge, t.breaker, t.admission) with
  | Some b, _, _, _ when b <= 0.0 -> Error "op_budget must be positive"
  | Some _, _, _, _ when not t.deadlines -> Error "op_budget without deadlines has no effect"
  | _, Some h, _, _ when not (h.quantile > 0.0 && h.quantile < 1.0) ->
      Error "hedge quantile must lie strictly between 0 and 1"
  | _, Some h, _, _ when h.floor < 0.0 -> Error "hedge floor must be non-negative"
  | _, _, Some b, _ when b.threshold < 1 -> Error "breaker threshold must be at least 1"
  | _, _, Some b, _ when b.cooldown <= 0.0 -> Error "breaker cooldown must be positive"
  | _, _, _, Some a when a < 1 -> Error "admission limit must be at least 1"
  | _ -> Ok t

let pp ppf t =
  if not (enabled t) then Format.pp_print_string ppf "robustness(off)"
  else
    Format.fprintf ppf "robustness(deadlines=%B%s%s%s%s)" t.deadlines
      (match t.op_budget with Some b -> Printf.sprintf ", budget=%g" b | None -> "")
      (match t.hedge with
      | Some h -> Printf.sprintf ", hedge=q%.2f/floor %g" h.quantile h.floor
      | None -> "")
      (match t.breaker with
      | Some b -> Printf.sprintf ", breaker=%d/%g" b.threshold b.cooldown
      | None -> "")
      (match t.admission with Some a -> Printf.sprintf ", admission=%d" a | None -> "")
