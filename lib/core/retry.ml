type jitter = No_jitter | Decorrelated

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  deadline : float;
  jitter : jitter;
}

let no_retry =
  {
    max_attempts = 1;
    base_delay = 0.0;
    multiplier = 1.0;
    max_delay = 0.0;
    deadline = infinity;
    jitter = No_jitter;
  }

let default_policy ?(unit = 4.0) () =
  if unit <= 0.0 then invalid_arg "Retry.default_policy: unit must be positive";
  {
    max_attempts = 6;
    base_delay = unit;
    multiplier = 2.0;
    max_delay = 16.0 *. unit;
    deadline = 64.0 *. unit;
    jitter = No_jitter;
  }

let validate p =
  if p.max_attempts < 1 then Error "max_attempts must be at least 1"
  else if p.base_delay < 0.0 then Error "base_delay must be non-negative"
  else if p.multiplier < 1.0 then Error "multiplier must be at least 1"
  else if p.max_delay < 0.0 then Error "max_delay must be non-negative"
  else if p.max_delay < p.base_delay then Error "max_delay must not be below base_delay"
  else if p.deadline <= 0.0 then Error "deadline must be positive"
  else Ok p

let backoff p ~attempt =
  (* Delay before attempt [attempt + 1]; attempt is 1-based. *)
  Float.min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)))

let backoff_jittered p ~rng ~prev =
  (* Decorrelated jitter: draw uniformly from [base, prev * 3], clamped to
     the policy's [base_delay, max_delay] envelope.  The sequence is seeded
     by the caller's [rng], so runs stay deterministic in the seed. *)
  let hi = prev *. 3.0 in
  let d =
    if hi <= p.base_delay then p.base_delay
    else p.base_delay +. Random.State.float rng (hi -. p.base_delay)
  in
  Float.max p.base_delay (Float.min p.max_delay d)

type stats = {
  mutable operations : int;
  mutable attempts : int;
  mutable retries : int;
  mutable succeeded : int;
  mutable recovered : int;
  mutable timeouts : int;
  mutable gave_up : int;
  mutable rejected : int;
  mutable last_errors : (float * string) list;
  error_window : int;
}

let create_stats ?(error_window = 8) () =
  if error_window < 0 then invalid_arg "Retry.create_stats: negative error window";
  {
    operations = 0;
    attempts = 0;
    retries = 0;
    succeeded = 0;
    recovered = 0;
    timeouts = 0;
    gave_up = 0;
    rejected = 0;
    last_errors = [];
    error_window;
  }

let operations s = s.operations
let attempts s = s.attempts
let retries s = s.retries
let succeeded s = s.succeeded
let recovered s = s.recovered
let timeouts s = s.timeouts
let gave_up s = s.gave_up
let rejected s = s.rejected
let last_errors s = s.last_errors

let conserved s = s.operations = s.succeeded + s.timeouts + s.gave_up + s.rejected

let record_error s ~at reason =
  if s.error_window > 0 then begin
    let keep = List.filteri (fun i _ -> i < s.error_window - 1) s.last_errors in
    s.last_errors <- (at, Types.failure_reason_to_string reason) :: keep
  end

(* Everything the cluster can report is potentially transient once the wire
   is lossy: a dropped vote costs the quorum, a dropped transfer times the
   pull out, a dying coordinator looks locally unavailable.  The policy's
   attempt/deadline bounds keep genuinely persistent outages from spinning. *)
let transient (_ : Types.failure_reason) = true

let run policy ~engine ~stats ?rng ?(retryable = transient) f =
  (match validate policy with Ok _ -> () | Error e -> invalid_arg ("Retry.run: " ^ e));
  (* A decorrelated-jitter policy without an rng used to fall back silently
     to the deterministic schedule — callers believed their retriers were
     spread apart when they were colliding.  Refuse the combination. *)
  (match (policy.jitter, rng) with
  | Decorrelated, None -> invalid_arg "Retry.run: jitter = Decorrelated requires ~rng"
  | Decorrelated, Some _ | No_jitter, _ -> ());
  let start = Sim.Engine.now engine in
  stats.operations <- stats.operations + 1;
  let rec go attempt ~prev_delay =
    stats.attempts <- stats.attempts + 1;
    match f ~attempt with
    | Ok _ as ok ->
        stats.succeeded <- stats.succeeded + 1;
        if attempt > 1 then stats.recovered <- stats.recovered + 1;
        ok
    | Error reason as err ->
        record_error stats ~at:(Sim.Engine.now engine) reason;
        if not (retryable reason) then begin
          stats.rejected <- stats.rejected + 1;
          err
        end
        else if attempt >= policy.max_attempts then begin
          stats.gave_up <- stats.gave_up + 1;
          err
        end
        else begin
          let delay =
            match (policy.jitter, rng) with
            | Decorrelated, Some rng -> backoff_jittered policy ~rng ~prev:prev_delay
            (* Decorrelated-without-rng was rejected at entry, so this arm
               only ever fires for No_jitter. *)
            | Decorrelated, None | No_jitter, _ -> backoff policy ~attempt
          in
          let now = Sim.Engine.now engine in
          if now +. delay -. start > policy.deadline then begin
            stats.timeouts <- stats.timeouts + 1;
            err
          end
          else begin
            stats.retries <- stats.retries + 1;
            Sim.Engine.run_until engine (now +. delay);
            go (attempt + 1) ~prev_delay:delay
          end
        end
  in
  go 1 ~prev_delay:policy.base_delay

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>retry stats: %d ops (%d ok), %d attempts (%d retries), %d recovered, %d deadline timeouts, \
     %d gave up, %d rejected"
    s.operations s.succeeded s.attempts s.retries s.recovered s.timeouts s.gave_up s.rejected;
  List.iter (fun (at, msg) -> Format.fprintf ppf "@,  t=%-10.3f %s" at msg) (List.rev s.last_errors);
  Format.fprintf ppf "@]"
