(** Shared vocabulary of the replication layer. *)

module Int_set : Set.S with type elt = int

type site_state =
  | Failed  (** down due to hardware or software failure *)
  | Comatose
      (** repaired, but the currency of its blocks is not yet established
          (copy schemes only; voting sites go straight back to service) *)
  | Available  (** operational and known to hold current data *)

val site_state_to_string : site_state -> string
val pp_site_state : Format.formatter -> site_state -> unit

(** Consistency-control scheme selector.  [Dynamic_voting] is the
    extension of the reference [10] line: quorums are majorities of the
    {e last update group} rather than of the static site set, adjusted
    per block as sites fail and recover. *)
type scheme = Voting | Available_copy | Naive_available_copy | Dynamic_voting

val scheme_to_string : scheme -> string
val all_schemes : scheme list
val pp_scheme : Format.formatter -> scheme -> unit

(** Why an operation could not be served. *)
type failure_reason =
  | No_quorum  (** voting: too few votes collected *)
  | Site_not_available  (** the local site is failed or comatose *)
  | Timed_out  (** a needed peer stopped responding mid-operation *)
  | Current_copy_unreachable
      (** witness voting: a quorum exists and names the current version,
          but no reachable data site holds it *)
  | Overloaded
      (** shed rather than served: the site's work queue was full or the
          device's admission limit was reached — a fast, explicit refusal
          so callers back off instead of waiting out a timeout *)

val failure_reason_to_string : failure_reason -> string

type read_result = (Blockdev.Block.t * int, failure_reason) result
(** On success: the block's contents and its version number. *)

type write_result = (int, failure_reason) result
(** On success: the version number assigned to the write. *)

type batch_read_result = ((Blockdev.Block.t * int) list, failure_reason) result
(** Group commit: results in batch order, or one failure for the whole
    batch (the first per-block failure a single-block operation would
    report).  Callers wanting partial progress split the batch and retry
    the halves — see [Fs.Buffer_cache]'s flush. *)

type batch_write_result = (int list, failure_reason) result
(** On success: the versions assigned, in batch order. *)

val int_set_of_list : int list -> Int_set.t
val pp_int_set : Format.formatter -> Int_set.t -> unit
