module Int_set = Types.Int_set
module Store = Blockdev.Store
module Durable = Blockdev.Durable_store

type t = {
  rt : Runtime.t;
  (* groups.(site).(block): the last update group this site knows for the
     block.  The in-memory mirror of a journaled on-disk record (one
     metadata key per block): like the version numbers it survives site
     failures, and unlike them a torn write of it is caught by the scrub
     and reset to the conservative full-set default — a too-large
     cardinality only makes quorum tests stricter.  Votes carry only the
     cardinality (all the quorum test needs); the membership itself
     drives the availability predicate. *)
  groups : Types.Int_set.t array array;
}

let group_of t site block = Int_set.cardinal t.groups.(site).(block)

let group_key block = Printf.sprintf "group%d" block

let set_group t site block g =
  t.groups.(site).(block) <- g;
  Durable.set_meta (Runtime.site t.rt site).Runtime.durable (group_key block)
    (Int_set.elements g)

(* A vote: (site, version, recorded group size). *)
let vote_of_reply block = function
  | from, Wire.Vote_reply { block = b; version; group_size; _ } when b = block ->
      Some (from, version, group_size)
  | _ -> None

(* Votes carry the effective version: a quarantined copy claims 0. *)
let local_vote t site block =
  let s = Runtime.site t.rt site in
  (site, Durable.effective_version s.Runtime.durable block, Int_set.cardinal t.groups.(site).(block))

let coordinator_alive t site = (Runtime.site t.rt site).Runtime.state = Types.Available

(* The dynamic quorum test: among [votes], the holders of the highest
   version must form a strict majority of the group that installed it.
   Returns the current holders and the top version on success. *)
let quorum_check votes =
  let top_version = List.fold_left (fun acc (_, v, _) -> Int.max acc v) 0 votes in
  let holders = List.filter (fun (_, v, _) -> v = top_version) votes in
  (* All current holders recorded the same group write, hence the same
     cardinality; max-merge defends against a corrupt straggler. *)
  let last_group = List.fold_left (fun acc (_, _, g) -> Int.max acc g) 0 holders in
  if 2 * List.length holders > last_group then Some (holders, top_version) else None

(* Route around breaker-open peers in the vote round — conservatively:
   group membership is unknown until the votes land, so a peer may only be
   dropped from the awaited set while the survivors plus the coordinator
   still form a strict majority of the {e full} site set, the largest
   group any block can record.  The multicast still reaches dropped peers
   and their votes are tallied if they arrive; safety rests on the quorum
   test over received votes, never on the pruning. *)
let prune_suspects t ~site expected =
  let n = Runtime.n_sites t.rt in
  List.fold_left
    (fun kept peer ->
      if Runtime.breaker_allows t.rt ~coordinator:site ~peer then kept
      else
        let kept' = Int_set.remove peer kept in
        if 2 * (Int_set.cardinal kept' + 1) > n then kept' else kept)
    expected
    (List.rev (Int_set.elements expected))

let collect_votes ?deadline t ~site ~block ~purpose ~k =
  let expected = prune_suspects t ~site (Runtime.up_peers t.rt site) in
  let rid =
    Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected
      ~on_complete:(fun outcome replies ->
        match outcome with
        | Runtime.Aborted -> k None
        | Runtime.Complete | Runtime.Timeout ->
            if not (coordinator_alive t site) then k None
            else k (Some (local_vote t site block :: List.filter_map (vote_of_reply block) replies)))
  in
  Runtime.broadcast t.rt ~op:purpose ~from:site (Wire.Vote_request { rid; block; purpose })

let apply_update t site block data ~version ~group =
  let s = Runtime.site t.rt site in
  if
    version > Store.version s.Runtime.store block
    || ((not (Durable.checksum_ok s.Runtime.durable block))
       && version >= Store.version s.Runtime.store block)
  then begin
    Durable.write s.Runtime.durable block data ~version;
    set_group t site block group
  end

(* Version-based quorum checks can fail transiently while an update is
   still propagating (only the writer holds the top version for one
   latency).  Operations therefore retry once after the wires quiet
   down before reporting No_quorum. *)
let with_retry t ?deadline ~site attempt callback =
  let retried = ref false in
  let rec go () =
    attempt (function
      | Error Types.No_quorum when not !retried ->
          retried := true;
          let delay = (Runtime.config t.rt).Config.op_timeout in
          (* A retry that would start past the operation's deadline is not
             scheduled at all: the budget is already spent. *)
          if
            Runtime.past_deadline t.rt
              (Option.map (fun d -> d -. delay) deadline)
          then callback (Error Types.Timed_out)
          else
            ignore
              (Sim.Engine.schedule (Runtime.engine t.rt) ~delay (fun () ->
                   if (Runtime.site t.rt site).Runtime.state = Types.Available then go ()
                   else callback (Error Types.Site_not_available))
                : Sim.Engine.handle)
      | result -> callback result)
  in
  go ()

let read_attempt t ?deadline ~site ~block callback =
  let s = Runtime.site t.rt site in
  if s.Runtime.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    collect_votes ?deadline t ~site ~block ~purpose:Net.Message.Read ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes -> (
          match quorum_check votes with
          | None -> callback (Error Types.No_quorum)
          | Some (holders, top_version) -> (
              match Durable.read_verified s.Runtime.durable block with
              | Some (data, v) when v >= top_version -> callback (Ok (data, top_version))
              | _ when List.for_all (fun (i, _, _) -> i = site) holders ->
                  (* The local site is the only holder yet cannot serve: a
                     quarantined copy only wins the vote at effective
                     version 0 (a rotted never-written block), so there is
                     nothing to pull — heal it with the zero block. *)
                  if top_version = 0 then begin
                    Durable.write s.Runtime.durable block Blockdev.Block.zero ~version:0;
                    callback (Ok (Blockdev.Block.zero, 0))
                  end
                  else callback (Error Types.Current_copy_unreachable)
              | _ when Runtime.past_deadline t.rt deadline ->
                  (* The votes consumed the budget; the pull cannot meet
                     it, so it is not issued. *)
                  callback (Error Types.Timed_out)
              | _ ->
              begin
                (* Pull from the lowest-id current holder (deterministic). *)
                let source =
                  List.fold_left (fun acc (i, _, _) -> Int.min acc i) max_int
                    (List.filter (fun (i, _, _) -> i <> site) holders)
                in
                let rid =
                  Runtime.begin_round ?deadline t.rt ~coordinator:site
                    ~expected:(Int_set.singleton source)
                    ~on_complete:(fun outcome replies ->
                      if not (coordinator_alive t site) then callback (Error Types.Site_not_available)
                      else
                        match
                          ( outcome,
                            List.find_map
                              (function
                                | _, Wire.Block_transfer { block = b; version; data; _ } when b = block
                                  ->
                                    Some (version, data)
                                | _ -> None)
                              replies )
                        with
                        | (Runtime.Complete | Runtime.Timeout), Some (version, data)
                          when version >= top_version ->
                            (* Install the data but keep our group record:
                               a pulled copy does not make us a member of
                               the holder's group, and a conservative
                               (over-large) recorded cardinality can only
                               make later quorum tests stricter, never
                               unsafe.  A transfer below the voted version
                               (the holder's copy rotted in between) is
                               rejected above, like a timeout. *)
                            if
                              version > Store.version s.Runtime.store block
                              || ((not (Durable.checksum_ok s.Runtime.durable block))
                                 && version >= Store.version s.Runtime.store block)
                            then Durable.write s.Runtime.durable block data ~version;
                            callback (Ok (data, version))
                        | (Runtime.Complete | Runtime.Timeout), Some _
                        | _, None
                        | Runtime.Aborted, _ ->
                            callback (Error Types.Timed_out))
                in
                Runtime.send t.rt ~op:Net.Message.Read ~from:site ~dst:source
                  (Wire.Block_request { rid; block })
              end)))

let read t ?deadline ~site ~block callback =
  with_retry t ?deadline ~site (fun k -> read_attempt t ?deadline ~site ~block k) callback

let write_attempt t ?deadline ~site ~block data callback =
  let s = Runtime.site t.rt site in
  if s.Runtime.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else
    collect_votes ?deadline t ~site ~block ~purpose:Net.Message.Write ~k:(function
      | None -> callback (Error Types.Site_not_available)
      | Some votes -> (
          match quorum_check votes with
          | None -> callback (Error Types.No_quorum)
          | Some (_, top_version) ->
              let version = top_version + 1 in
              (* Tentative new group: every voter (stale members are
                 thereby adopted back and rewritten). *)
              let tentative =
                List.fold_left (fun acc (i, _, _) -> Int_set.add i acc) Int_set.empty votes
              in
              Durable.write s.Runtime.durable block data ~version;
              set_group t site block tentative;
              (* The group's recorded cardinality must match who actually
                 applied the write, or a missed update could wedge a small
                 group forever: collect acknowledgements and, when someone
                 died in flight, publish the group that really formed. *)
              let expected = Int_set.remove site tentative in
              (* The ack round is deliberately NOT breaker-pruned: the
                 ackers determine the final group, and not waiting for a
                 live member would shrink the published group for a reason
                 unrelated to who applied the write.  The deadline still
                 clamps the wait. *)
              let rid =
                Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected
                  ~on_complete:(fun outcome replies ->
                    match outcome with
                    | Runtime.Aborted -> callback (Error Types.Site_not_available)
                    | Runtime.Complete | Runtime.Timeout ->
                        let ackers =
                          List.filter_map
                            (function
                              | from, Wire.Write_ack { block = b; _ } when b = block -> Some from
                              | _ -> None)
                            replies
                        in
                        let final = Int_set.add site (Int_set.of_list ackers) in
                        if not (Int_set.equal final tentative) then begin
                          set_group t site block final;
                          Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
                            (Wire.Group_fix { block; version; group = final })
                        end;
                        callback (Ok version))
              in
              Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
                (Wire.Block_update { rid = Some rid; block; version; data; carried_w = tentative })))

let write t ?deadline ~site ~block data callback =
  with_retry t ?deadline ~site (fun k -> write_attempt t ?deadline ~site ~block data k) callback

let handle t (s : Runtime.site) ~from msg =
  match msg with
  | Wire.Vote_request { rid; block; purpose } ->
      Runtime.send t.rt ~op:purpose ~from:s.Runtime.id ~dst:from
        (Wire.Vote_reply
           {
             rid;
             block;
             version = Durable.effective_version s.Runtime.durable block;
             weight = 1;
             group_size = Int_set.cardinal t.groups.(s.Runtime.id).(block);
           })
  | Wire.Block_update { rid; block; version; data; carried_w } ->
      (* Only named group members may adopt the write: an unlisted site
         silently counting itself into the group would break the
         majority-of-last-group arithmetic. *)
      if Int_set.mem s.Runtime.id carried_w then begin
        apply_update t s.Runtime.id block data ~version ~group:carried_w;
        match rid with
        | Some rid ->
            Runtime.send t.rt ~op:Net.Message.Write ~from:s.Runtime.id ~dst:from
              (Wire.Write_ack { rid; block })
        | None -> ()
      end
  | Wire.Group_fix { block; version; group } ->
      (* Adopt the corrected cardinality only if we hold exactly that
         write. *)
      if
        Int_set.mem s.Runtime.id group
        && Durable.effective_version s.Runtime.durable block = version
      then set_group t s.Runtime.id block group
  | Wire.Block_request { rid; block } ->
      (* A quarantined copy serves (0, zero) — it can prove nothing — and
         the requester rejects the transfer against the voted version. *)
      let version = Durable.effective_version s.Runtime.durable block in
      let data =
        if version = 0 then Blockdev.Block.zero else Store.read s.Runtime.store block
      in
      Runtime.send t.rt ~op:Net.Message.Read ~from:s.Runtime.id ~dst:from
        (Wire.Block_transfer { rid; block; version; data })
  | Wire.Vote_reply { rid; _ } | Wire.Block_transfer { rid; _ } | Wire.Write_ack { rid; _ } ->
      Runtime.reply t.rt ~rid ~from msg
  | Wire.Recovery_probe _ | Wire.Recovery_reply _ | Wire.Vv_send _ | Wire.Vv_reply _
  | Wire.Batch_vote_request _ | Wire.Batch_vote_reply _ | Wire.Batch_update _ | Wire.Batch_ack _
  | Wire.Batch_request _ | Wire.Batch_transfer _ ->
      (* Dynamic voting keeps per-block update groups, which a shared
         batch round cannot carry; the cluster layer falls back to
         chained single-block operations for this scheme. *)
      ()

let create rt =
  let config = Runtime.config rt in
  let everyone = Int_set.of_list (List.init config.Config.n_sites Fun.id) in
  let t =
    {
      rt;
      groups = Array.init config.Config.n_sites (fun _ -> Array.make config.Config.n_blocks everyone);
    }
  in
  (* Register the conservative on-disk default for every group record, the
     value a scrub (torn metadata) or disk replacement falls back to. *)
  Array.iter
    (fun (s : Runtime.site) ->
      for b = 0 to config.Config.n_blocks - 1 do
        Durable.set_meta_default s.Runtime.durable (group_key b) (Int_set.elements everyone)
      done)
    (Runtime.sites rt);
  Runtime.set_dispatch rt (fun s ~from msg -> handle t s ~from msg);
  t

let on_repair t site =
  Runtime.repair_site t.rt site (fun (s : Runtime.site) ->
      (* Reload the in-memory group mirror from disk: the scrub may have
         reset a torn record to its full-set default, and a replaced disk
         comes back with defaults everywhere. *)
      let everyone = Int_set.of_list (List.init (Runtime.n_sites t.rt) Fun.id) in
      Array.iteri
        (fun block _ ->
          t.groups.(site).(block) <-
            (match Durable.get_meta s.Runtime.durable (group_key block) with
            | Some ids -> Int_set.of_list ids
            | None -> everyone))
        t.groups.(site);
      Runtime.set_state t.rt s.Runtime.id Types.Available)

(* Post-quiescence availability: once in-flight updates land, every up
   member of a block's last group holds its top version, so the block is
   serviceable iff a strict majority of that group is up.  Among the top
   holders' records we take the smallest group (the coordinator's
   post-fix one) — the most conservative. *)
let service_available t =
  let rt = t.rt in
  let config = Runtime.config rt in
  let sites = Runtime.sites rt in
  let ok = ref true in
  for block = 0 to config.Config.n_blocks - 1 do
    let top_version = ref 0 in
    Array.iter
      (fun (s : Runtime.site) ->
        top_version := Int.max !top_version (Durable.effective_version s.Runtime.durable block))
      sites;
    let group = ref None in
    Array.iter
      (fun (s : Runtime.site) ->
        if Durable.effective_version s.Runtime.durable block = !top_version then begin
          let g = t.groups.(s.Runtime.id).(block) in
          match !group with
          | Some best when Int_set.cardinal best <= Int_set.cardinal g -> ()
          | Some _ | None -> group := Some g
        end)
      sites;
    match !group with
    | None -> ok := false
    | Some g ->
        let members_up =
          Int_set.cardinal
            (Int_set.filter (fun i -> sites.(i).Runtime.state = Types.Available) g)
        in
        if not (2 * members_up > Int_set.cardinal g) then ok := false
  done;
  !ok
