type t = {
  scheme : Types.scheme;
  n_sites : int;
  n_blocks : int;
  net_mode : Net.Network.mode;
  latency : Util.Dist.t;
  op_timeout : float;
  quorum : Quorum.t;
  witnesses : Types.Int_set.t;
  track_liveness : bool;
  seed : int;
  fault_profile : Net.Faults.profile;
  service : Net.Service_model.t option;
  robustness : Robustness.t;
  sync_profile : Blockdev.Sync_cost.profile option;
  encoded_delivery : bool;
  quarantine : Net.Network.quarantine;
}

let make ~scheme ~n_sites ?(n_blocks = 64) ?(net_mode = Net.Network.Multicast)
    ?(latency = Util.Dist.Constant 0.5) ?op_timeout ?quorum ?(witnesses = []) ?(track_liveness = false)
    ?(seed = 42) ?(fault_profile = Net.Faults.pristine) ?service ?(robustness = Robustness.off) ?sync_profile
    ?(encoded_delivery = false) ?(quarantine = Net.Network.default_quarantine) () =
  if n_sites < 1 then Error "need at least one site"
  else if n_blocks < 1 then Error "need at least one block"
  else begin
    match Util.Dist.validate latency with
    | Error e -> Error ("bad latency distribution: " ^ e)
    | Ok latency ->
        let op_timeout = Option.value op_timeout ~default:(8.0 *. Util.Dist.mean latency) in
        if op_timeout <= 0.0 then Error "op_timeout must be positive"
        else begin
          let quorum = match quorum with Some q -> q | None -> Quorum.majority ~n:n_sites in
          let witness_set = Types.int_set_of_list witnesses in
          if not (Int.equal (Quorum.n_sites quorum) n_sites) then
            Error "quorum weight vector length must equal n_sites"
          else if Types.Int_set.exists (fun w -> w < 0 || w >= n_sites) witness_set then
            Error "witness ids must name existing sites"
          else if Types.Int_set.cardinal witness_set >= n_sites then
            Error "at least one site must hold data"
          else if (not (Types.Int_set.is_empty witness_set)) && scheme <> Types.Voting then
            Error "witnesses only make sense under voting"
          else begin
            match Net.Faults.validate_profile fault_profile with
            | Error e -> Error ("bad fault profile: " ^ e)
            | Ok _
              when (not encoded_delivery)
                   && not (Net.Faults.corruption_is_trivial fault_profile.Net.Faults.corruption) ->
                (* The PR 6 lesson: a knob that can silently inject nothing
                   is a bug factory.  Corruption damages encoded bytes, so
                   without encoded delivery it would be exactly that. *)
                Error "corruption injection requires encoded_delivery (there are no wire bytes to damage otherwise)"
            | Ok fault_profile -> (
                let service_ok =
                  match service with
                  | None -> Ok None
                  | Some m -> (
                      match Net.Service_model.validate m with
                      | Ok m -> Ok (Some m)
                      | Error e -> Error ("bad service model: " ^ e))
                in
                match service_ok with
                | Error e -> Error e
                | Ok service -> (
                    match Robustness.validate robustness with
                    | Error e -> Error ("bad robustness config: " ^ e)
                    | Ok robustness -> (
                        match Net.Network.validate_quarantine quarantine with
                        | Error e -> Error ("bad quarantine policy: " ^ e)
                        | Ok quarantine ->
                        Ok
                          {
                            scheme;
                            n_sites;
                            n_blocks;
                            net_mode;
                            latency;
                            op_timeout;
                            quorum;
                            witnesses = witness_set;
                            track_liveness;
                            seed;
                            fault_profile;
                            service;
                            robustness;
                            sync_profile;
                            encoded_delivery;
                            quarantine;
                          })))
          end
        end
  end

let make_exn ~scheme ~n_sites ?n_blocks ?net_mode ?latency ?op_timeout ?quorum ?witnesses
    ?track_liveness ?seed ?fault_profile ?service ?robustness ?sync_profile ?encoded_delivery
    ?quarantine () =
  match
    make ~scheme ~n_sites ?n_blocks ?net_mode ?latency ?op_timeout ?quorum ?witnesses
      ?track_liveness ?seed ?fault_profile ?service ?robustness ?sync_profile ?encoded_delivery
      ?quarantine ()
  with
  | Ok t -> t
  | Error msg -> invalid_arg ("Config.make: " ^ msg)

let pp ppf t =
  Format.fprintf ppf "config(%s, n=%d, blocks=%d, %s, latency=%a, timeout=%g, seed=%d)"
    (Types.scheme_to_string t.scheme)
    t.n_sites t.n_blocks
    (Net.Network.mode_to_string t.net_mode)
    Util.Dist.pp t.latency t.op_timeout t.seed
