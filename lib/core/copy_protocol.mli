(** The available copy family (Sections 3.2 and 3.3).

    One engine implements both variants:

    - {b Standard} (Figure 5): writes go to every available copy; replies to
      each write refresh the writer's was-available set W_s, and W sets are
      piggybacked on writes (the paper's delayed-propagation relaxation of
      atomic broadcast) and updated on repairs.  After a total failure a
      recovering site waits only for the sites in the closure C*(W_s).
    - {b Naive} (Figure 6): no availability bookkeeping at all — W is
      pinned to the full site set, writes are fire-and-forget (a single
      multicast transmission), and after a total failure a site waits for
      {e every} copy to return.

    Reads are always local at an available site and cost no messages.

    Recovery runs as: broadcast a probe (everyone operational replies with
    state, version vector and W), then either repair from any available
    site, or — when the closure has fully recovered — from its
    highest-versioned member, via one version-vector exchange.  A site that
    completes recovery answers the probes it remembers with a deferred
    reply, implementing the "when ∃u available" arm of the select for
    waiters that probed earlier. *)

type variant = Standard | Naive

type t

val create : Runtime.t -> variant -> t
(** Builds the protocol and installs its message handler.  With
    [Config.track_liveness] and [Standard], available sites additionally
    observe peer failures and keep W equal to the live available set — the
    idealised algorithm whose availability the Figure 7 chain computes. *)

val variant : t -> variant

val read :
  t -> ?deadline:float -> site:int -> block:Blockdev.Block.id -> (Types.read_result -> unit) -> unit
(** Local read at an available site; no network traffic.  Fails with
    [Site_not_available] at a failed or comatose site.

    [deadline] (absolute virtual time) only matters on the peer
    read-repair path a quarantined local copy takes: the repair round
    stops waiting at the deadline and is not issued at all once it has
    passed.  A healthy local serve ignores it (no sub-request is sent). *)

val write :
  t ->
  ?deadline:float ->
  site:int ->
  block:Blockdev.Block.id ->
  Blockdev.Block.t ->
  (Types.write_result -> unit) ->
  unit
(** Write to all available copies.  [deadline] clamps the Standard ack
    round and refuses the operation outright (before the local write) once
    expired.  The ack round also routes around breaker-open peers: they
    still receive the update multicast and still enter W — only the
    waiting is skipped, so W never shrinks below the send-time
    was-available set. *)

(** {1 Group commit}

    Batched counterparts of [read] and [write].  Reads stay local;
    a batched write pushes every block of the batch in a single update
    multicast and (Standard) collects one ack per peer for the whole
    batch, so the transmission count of a k-block group equals that of a
    single write.  A batch of one is semantically identical to the
    single-block operation. *)

val read_batch :
  t ->
  ?deadline:float ->
  site:int ->
  blocks:Blockdev.Block.id list ->
  (Types.batch_read_result -> unit) ->
  unit

val write_batch :
  t ->
  ?deadline:float ->
  site:int ->
  (Blockdev.Block.id * Blockdev.Block.t) list ->
  (Types.batch_write_result -> unit) ->
  unit

val on_repair : t -> int -> unit
(** Bring a failed site back as comatose and start the recovery protocol of
    Figure 5 (Standard) or Figure 6 (Naive). *)

val any_available : t -> bool
(** The copy-scheme availability predicate: at least one available site. *)
