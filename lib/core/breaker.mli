(** Per-peer circuit breaker: stop sending to a peer that keeps failing
    rounds, probe it again after a cooldown.

    A breaker is a pure view over the virtual clock — it schedules nothing.
    [Closed] (healthy) trips to [Open] after [threshold] consecutive round
    failures; [Open] refuses traffic until [cooldown] has elapsed, after
    which the breaker is [Half_open] and allows trial traffic whose outcome
    decides: success closes it, failure re-opens it (cooldown restarts,
    no new trip counted).

    Coordinators consult breakers only to {e prefer} responsive peers —
    pruning a suspect from a round's expected set is legal only while the
    remainder still satisfies the scheme's safety rule (quorum weight,
    W-set inclusion), which the call sites enforce.  Safety never rests on
    a breaker being right. *)

type t

type state = Closed | Open | Half_open

val create : Sim.Engine.t -> threshold:int -> cooldown:float -> t
(** [threshold >= 1] consecutive failures trip; the peer is shunned for
    [cooldown > 0] virtual time. *)

val state : t -> state
val allows : t -> bool
(** [true] iff the breaker would let a request through now ([Closed] or
    [Half_open]). *)

val record_success : t -> unit
(** The peer answered a round: reset the failure run and close. *)

val record_failure : t -> unit
(** The peer missed a round (unanswered at timeout): extend the failure
    run, tripping or re-opening as the state dictates. *)

val trips : t -> int
(** Closed-to-open transitions so far (re-opens from half-open excluded). *)

val consecutive_failures : t -> int
val state_to_string : state -> string
val pp : Format.formatter -> t -> unit
