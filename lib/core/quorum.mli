(** Weighted quorums for majority consensus voting (Section 3.1).

    Every site holding a copy carries a vote weight; reads need a set of
    respondents whose weights reach the read threshold, writes the write
    threshold.  The thresholds must guarantee that (i) any read quorum
    intersects any write quorum and (ii) two write quorums intersect, which
    is what makes the highest version in a quorum the current one. *)

type t

val create :
  weights:int array -> ?read_threshold:int -> ?write_threshold:int -> unit -> (t, string) result
(** [create ~weights ()] builds a quorum system.  Default thresholds are the
    strict majority [total/2 + 1] for both reads and writes.  Returns
    [Error] when a weight is non-positive, or the thresholds violate
    [read + write > total] or [2*write > total]. *)

val unsafe : weights:int array -> read_threshold:int -> write_threshold:int -> t
(** Like {!create} but {e without} the intersection constraints: thresholds
    need only be positive and at most the total weight.  This deliberately
    builds broken quorum systems ([read + write <= total], minority
    writes, ...) for the adversarial chaos harness, whose oracle must
    catch the resulting stale reads.  Never use in a configuration whose
    answers you intend to trust.  Raises [Invalid_argument] only on
    non-positive weights/thresholds or thresholds above the total. *)

val majority : n:int -> t
(** The paper's default configuration.  Odd [n]: equal weights 1.  Even [n]:
    the tie-breaking adjustment of Section 4.1 — site 0 gets weight 3 and
    the others weight 2, so draws are impossible and availability equals
    that of [n-1] equally weighted copies. *)

val n_sites : t -> int
val weight : t -> int -> int
val total_weight : t -> int
val read_threshold : t -> int
val write_threshold : t -> int

val weight_of : t -> int list -> int
(** Summed weight of a list of distinct site ids. *)

val read_quorum_met : t -> int -> bool
(** [read_quorum_met q w] — does collected weight [w] reach the read
    threshold? *)

val write_quorum_met : t -> int -> bool

val pp : Format.formatter -> t -> unit
