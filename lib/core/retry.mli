(** Bounded retries with exponential backoff, in virtual time.

    The paper's request path fails an operation on the first error because
    its environment never loses a message; once {!Net.Faults} can drop or
    delay deliveries, a single lost vote or transfer must not surface as a
    device error.  This module wraps a synchronous attempt in a bounded
    retry loop: between attempts it {e advances the simulation engine} by
    the backoff delay, so retries consume virtual time exactly like any
    other protocol activity, and every run remains deterministic in the
    seed.

    Degradation is observable: a shared {!stats} record counts attempts,
    retries, recoveries, deadline timeouts and abandoned operations, and
    keeps a bounded window of the most recent errors — surfaced through
    [Reliable_device.degradation] and [Report.Degradation]. *)

type jitter =
  | No_jitter  (** deterministic exponential backoff (the default) *)
  | Decorrelated
      (** decorrelated jitter: each delay is drawn uniformly from
          [[base_delay, 3 * previous delay]], clamped to the policy's
          [[base_delay, max_delay]] envelope.  Spreads simultaneous
          retriers apart so they stop colliding on the same quorum round.
          Requires the caller to pass [?rng] to {!run}: the combination
          without one is rejected ([Invalid_argument]) rather than
          silently degrading to the deterministic schedule, which would
          let supposedly-decorrelated retriers collide. *)

type policy = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  base_delay : float;  (** backoff before the second attempt *)
  multiplier : float;  (** backoff growth factor per retry (>= 1) *)
  max_delay : float;  (** cap on any single backoff *)
  deadline : float;
      (** total virtual-time budget measured from the first attempt; a
          retry that would start beyond it is not issued *)
  jitter : jitter;  (** randomisation of the backoff schedule *)
}

val no_retry : policy
(** One attempt, no backoff: the paper's original fail-fast behaviour. *)

val default_policy : ?unit:float -> unit -> policy
(** Six attempts, backoff [unit, 2 unit, 4 unit, ...] capped at [16 unit],
    deadline [64 unit].  [unit] defaults to 4.0 (= the default
    [Config.op_timeout]); pass the cluster's own timeout to scale. *)

val validate : policy -> (policy, string) result

val backoff : policy -> attempt:int -> float
(** Backoff scheduled after failed attempt number [attempt] (1-based). *)

val backoff_jittered : policy -> rng:Random.State.t -> prev:float -> float
(** One decorrelated-jitter delay given the previous delay (seed the chain
    with [base_delay]).  Always within [[base_delay, max_delay]] whatever
    [rng] draws — the property the unit tests pin down. *)

(** {1 Degradation statistics} *)

type stats

val create_stats : ?error_window:int -> unit -> stats
(** A fresh, all-zero record keeping up to [error_window] (default 8)
    recent errors. *)

val operations : stats -> int
(** Operations submitted to {!run}. *)

val attempts : stats -> int
(** Attempts issued, including each operation's first. *)

val retries : stats -> int
(** Attempts beyond an operation's first. *)

val succeeded : stats -> int
(** Operations that returned [Ok] (on any attempt). *)

val recovered : stats -> int
(** Operations that failed at least once and then succeeded;
    [recovered <= succeeded]. *)

val timeouts : stats -> int
(** Operations abandoned because the deadline budget ran out. *)

val gave_up : stats -> int
(** Operations abandoned after exhausting [max_attempts]. *)

val rejected : stats -> int
(** Operations abandoned because the [retryable] predicate refused their
    error (with the default {!transient} predicate this stays 0). *)

val conserved : stats -> bool
(** Counter conservation: with no operation in flight, every operation
    submitted to {!run} terminated exactly one way —
    [operations = succeeded + timeouts + gave_up + rejected]. *)

val last_errors : stats -> (float * string) list
(** Most recent first: (virtual time, failure reason) of failed attempts. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Running} *)

val transient : Types.failure_reason -> bool
(** The default retryable predicate: every failure reason is treated as
    potentially transient (under a lossy network each one can be), with the
    policy's bounds containing persistent outages. *)

val run :
  policy ->
  engine:Sim.Engine.t ->
  stats:stats ->
  ?rng:Random.State.t ->
  ?retryable:(Types.failure_reason -> bool) ->
  (attempt:int -> ('a, Types.failure_reason) result) ->
  ('a, Types.failure_reason) result
(** [run policy ~engine ~stats f] calls [f ~attempt:1], and on a retryable
    error backs off (driving [engine] forward by the delay) and tries
    again, up to the policy's attempt and deadline bounds.  Returns the
    first success or the last error.  With [jitter = Decorrelated],
    delays follow the decorrelated-jitter chain seeded by the mandatory
    [rng] — omitting it raises [Invalid_argument] (it used to fall back
    silently to the deterministic schedule).  Raises [Invalid_argument]
    on an invalid policy. *)
