module Int_set = Types.Int_set
module Store = Blockdev.Store
module Durable = Blockdev.Durable_store
module Vv = Blockdev.Version_vector

type variant = Standard | Naive

type t = { rt : Runtime.t; variant : variant }

let variant t = t.variant

let full_set t = Int_set.of_list (List.init (Runtime.n_sites t.rt) Fun.id)

(* Install an update carrying verified peer data: strictly newer versions
   install as always, and data at (or above) a quarantined block's version
   floor repairs it in place. *)
let absorb (s : Runtime.site) block version data =
  if
    version > Store.version s.store block
    || ((not (Durable.checksum_ok s.durable block)) && version >= Store.version s.store block)
  then Durable.write s.durable block data ~version

(* ------------------------------------------------------------------ *)
(* Data access                                                         *)
(* ------------------------------------------------------------------ *)

(* Steady-state peer read-repair: an available site whose local copy fails
   its checksum asks the available peers for the block instead of serving
   garbage.  Only a verified copy at or above the local stored version may
   heal the quarantine — the intact version number is a floor below which
   this disk must not regress — so a repaired read can never be stale. *)
let read_repair t ?deadline ~site ~block callback =
  let s = Runtime.site t.rt site in
  let floor_version = Store.version s.store block in
  if Int_set.is_empty (Runtime.peers_matching t.rt site (fun p -> p.state = Types.Available))
  then
    if floor_version = 0 then begin
      (* A rotted never-written block with nobody to ask: it logically
         holds the zero block, so heal it in place and serve that. *)
      Durable.write s.durable block Blockdev.Block.zero ~version:0;
      callback (Ok (Blockdev.Block.zero, 0))
    end
    else callback (Error Types.Current_copy_unreachable)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else begin
    let expected = Runtime.peers_matching t.rt site (fun p -> p.state = Types.Available) in
    let rid =
      Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected
        ~on_complete:(fun outcome replies ->
          match outcome with
          | Runtime.Aborted -> callback (Error Types.Site_not_available)
          | Runtime.Complete | Runtime.Timeout -> (
              let best =
                List.fold_left
                  (fun acc reply ->
                    match reply with
                    | _, Wire.Block_transfer { block = b; version; data; _ }
                      when b = block && version >= floor_version -> (
                        match acc with
                        | Some (_, v) when v >= version -> acc
                        | _ -> Some (data, version))
                    | _ -> acc)
                  None replies
              in
              match best with
              | Some (data, version) ->
                  Durable.write s.durable block data ~version;
                  callback (Ok (data, version))
              | None -> callback (Error Types.Current_copy_unreachable)))
    in
    Int_set.iter
      (fun peer ->
        Runtime.send t.rt ~op:Net.Message.Repair ~from:site ~dst:peer
          (Wire.Block_request { rid; block }))
      expected
  end

let read t ?deadline ~site ~block callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Durable.checksum_ok s.durable block then
    (* Serving locally issues no sub-request, so an expired deadline does
       not block it — the caller classifies lateness. *)
    callback (Ok (Store.read s.store block, Store.version s.store block))
  else read_repair t ?deadline ~site ~block callback

(* Breaker-pruned awaited set for a Standard ack round.  The update
   multicast still reaches every addressee, and W is always computed from
   the {e full} addressee set (plus comatose absorbers) — the pruning only
   stops the coordinator waiting on a suspected-slow peer's ack, it can
   never shrink W below the send-time was-available set. *)
let awaited_of t ~site expected =
  Int_set.filter (fun peer -> Runtime.breaker_allows t.rt ~coordinator:site ~peer) expected

let write t ?deadline ~site ~block data callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else begin
    let version = Store.version s.store block + 1 in
    Durable.write s.durable block data ~version;
    match t.variant with
    | Naive ->
        (* Fire and forget: reliable delivery makes the single broadcast
           sufficient (Section 5.1). *)
        Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
          (Wire.Block_update { rid = None; block; version; data; carried_w = full_set t });
        callback (Ok version)
    | Standard ->
        (* The broadcast carries our current W estimate (the receivers of
           the previous write); the new W is fixed by who the update was
           {e addressed} to, not by whose ack made it back in time. *)
        let expected = Runtime.peers_matching t.rt site (fun p -> p.state = Types.Available) in
        (* Comatose peers belong in W too: their stores absorb the update
           (see the Block_update handler), and leaving them out loses the
           race where a write lands between a recovering site's
           version-vector exchange and its becoming available — a later
           total-failure recovery starting there could close over a set
           that misses the newest copy and come back stale.  W must be the
           send-time was-available set (plus absorbers), never the acker
           set: an available peer whose ack is merely delayed past the
           round timeout still absorbs the update, and dropping it from W
           unsoundly shrinks every closure computed from this site.  Too
           large is safe (closure recovery waits for more sites and takes
           the newest copy among them); too small is a stale recovery. *)
        let comatose_at_send = Runtime.peers_matching t.rt site (fun p -> p.state = Types.Comatose) in
        let rid =
          Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected:(awaited_of t ~site expected)
            ~on_complete:(fun outcome replies ->
              ignore (replies : (int * Wire.t) list);
              match outcome with
              | Runtime.Aborted -> callback (Error Types.Site_not_available)
              | Runtime.Complete | Runtime.Timeout ->
                  let comatose_now =
                    Runtime.peers_matching t.rt site (fun p -> p.state = Types.Comatose)
                  in
                  Runtime.set_w t.rt site
                    (Int_set.add site
                       (Int_set.union expected (Int_set.union comatose_at_send comatose_now)));
                  callback (Ok version))
        in
        Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
          (Wire.Block_update { rid = Some rid; block; version; data; carried_w = s.w })
  end

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)
(* ------------------------------------------------------------------ *)

(* Copy-scheme reads are local, so batching them saves nothing on the
   wire; the batched form exists so the cache and driver layers can use
   one calling convention across schemes. *)
let read_batch t ?deadline ~site ~blocks callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else
    (* Heal any quarantined member of the group first (chained single-block
       read-repairs), then serve the whole group locally as before. *)
    let rec heal = function
      | [] ->
          callback
            (Ok (List.map (fun b -> (Store.read s.store b, Store.version s.store b)) blocks))
      | b :: rest ->
          if Durable.checksum_ok s.durable b then heal rest
          else
            read_repair t ?deadline ~site ~block:b (function
              | Ok _ -> heal rest
              | Error e -> callback (Error e))
    in
    heal blocks

(* Figure 5/6 writes, amortized: all k new versions travel in one
   update multicast, and (Standard) one ack per peer covers the whole
   batch, so a k-block group costs the same number of transmissions as
   a single write. *)
let write_batch t ?deadline ~site writes callback =
  let s = Runtime.site t.rt site in
  if s.state <> Types.Available then callback (Error Types.Site_not_available)
  else if Runtime.past_deadline t.rt deadline then callback (Error Types.Timed_out)
  else begin
    let payloads =
      List.map
        (fun (block, data) ->
          let version = Store.version s.store block + 1 in
          Durable.write s.durable block data ~version;
          (block, version, data))
        writes
    in
    let versions = List.map (fun (_, v, _) -> v) payloads in
    match t.variant with
    | Naive ->
        Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
          (Wire.Batch_update { rid = None; writes = payloads; carried_w = full_set t });
        callback (Ok versions)
    | Standard ->
        let expected = Runtime.peers_matching t.rt site (fun p -> p.state = Types.Available) in
        let comatose_at_send = Runtime.peers_matching t.rt site (fun p -> p.state = Types.Comatose) in
        let rid =
          Runtime.begin_round ?deadline t.rt ~coordinator:site ~expected:(awaited_of t ~site expected)
            ~on_complete:(fun outcome replies ->
              ignore (replies : (int * Wire.t) list);
              match outcome with
              | Runtime.Aborted -> callback (Error Types.Site_not_available)
              | Runtime.Complete | Runtime.Timeout ->
                  (* Same W rule as the single-block write: send-time
                     addressees plus comatose absorbers plus ourselves. *)
                  let comatose_now =
                    Runtime.peers_matching t.rt site (fun p -> p.state = Types.Comatose)
                  in
                  Runtime.set_w t.rt site
                    (Int_set.add site
                       (Int_set.union expected (Int_set.union comatose_at_send comatose_now)));
                  callback (Ok versions))
        in
        Runtime.broadcast t.rt ~op:Net.Message.Write ~from:site
          (Wire.Batch_update { rid = Some rid; writes = payloads; carried_w = s.w })
  end

(* ------------------------------------------------------------------ *)
(* Recovery (Figures 5 and 6)                                          *)
(* ------------------------------------------------------------------ *)

let operational_in_cache (s : Runtime.site) u =
  match s.cache.(u) with
  | Some (info : Wire.site_info) -> info.state <> Types.Failed
  | None -> false

(* Version vectors across copies are totally ordered in failure order, but
   we defend against incomparable vectors (which would indicate a protocol
   bug) by falling back to the componentwise sum. *)
let vv_sum v =
  let acc = ref 0 in
  for k = 0 to Vv.length v - 1 do
    acc := !acc + Vv.get v k
  done;
  !acc

let newer a b =
  if Vv.equal a b then false
  else if Vv.dominates a b then true
  else if Vv.dominates b a then false
  else vv_sum a > vv_sum b

let rec become_available t (s : Runtime.site) =
  s.repairing <- false;
  Runtime.set_state t.rt s.id Types.Available;
  (* Deferred recovery replies: every site we believe comatose — we heard
     from it while it (and we) were waiting — now learns an available copy
     exists, firing the "∃u available" arm of its select. *)
  Array.iter
    (fun entry ->
      match entry with
      | Some (info : Wire.site_info)
        when info.state = Types.Comatose
             && Runtime.Transport.is_up (Runtime.net t.rt) info.origin
             && (Runtime.site t.rt info.origin).state = Types.Comatose ->
          Runtime.send t.rt ~op:Net.Message.Recovery ~from:s.id ~dst:info.origin
            (Wire.Recovery_reply { rid = -1; info = Runtime.make_info t.rt s.id })
      | Some _ | None -> ())
    s.cache

and repair_from t (s : Runtime.site) source =
  s.repairing <- true;
  let rid =
    Runtime.begin_round t.rt ~coordinator:s.id ~expected:(Int_set.singleton source)
      ~on_complete:(fun outcome replies ->
        match outcome with
        | Runtime.Aborted -> ()
        | Runtime.Complete | Runtime.Timeout -> (
            let reply =
              List.find_map
                (function
                  | _, Wire.Vv_reply { versions; updates; w_of_source; _ } ->
                      Some (versions, updates, w_of_source)
                  | _ -> None)
                replies
            in
            match reply with
            | Some (versions, updates, w_of_source) when s.state = Types.Comatose ->
                Durable.apply_updates s.durable updates;
                (* [versions] is the source's effective (verified) vector;
                   our stored versions must dominate it — a quarantined
                   block that refused a below-floor offer still holds a
                   stored version above what was offered. *)
                assert (Vv.dominates (Store.versions s.store) versions);
                if t.variant = Standard then
                  Runtime.set_w t.rt s.id (Int_set.add s.id w_of_source);
                become_available t s
            | Some _ -> ()
            | None ->
                (* The source died (or re-failed) before answering; forget
                   what we knew about it and probe afresh. *)
                if s.state = Types.Comatose then begin
                  s.repairing <- false;
                  s.cache.(source) <- None;
                  start_recovery t s
                end))
  in
  (* Send the effective vector: a quarantined block claims version 0, so
     the source's transfer set covers it with a verified copy. *)
  Runtime.send t.rt ~op:Net.Message.Recovery ~from:s.id ~dst:source
    (Wire.Vv_send { rid; versions = Durable.effective_versions s.durable; w_of_sender = s.w })

(* The select of Figures 5/6: prefer any available site; otherwise wait for
   the closure of the was-available set (all sites, in the naive variant)
   to have recovered and take its most current member. *)
and evaluate t (s : Runtime.site) =
  if s.state = Types.Comatose && not s.repairing then begin
    let net = Runtime.net t.rt in
    let live u = Runtime.Transport.is_up net u in
    let available_peer =
      Array.fold_left
        (fun acc entry ->
          match (acc, entry) with
          | Some _, _ -> acc
          | None, Some (info : Wire.site_info) ->
              if info.state = Types.Available && live info.origin then Some info.origin else None
          | None, None -> acc)
        None s.cache
    in
    match available_peer with
    | Some u -> repair_from t s u
    | None ->
        let own = match t.variant with Standard -> s.w | Naive -> full_set t in
        let known u =
          match s.cache.(u) with Some (info : Wire.site_info) -> Some info.was_available | None -> None
        in
        let closure = Closure.compute ~self:s.id ~own ~known in
        let recovered u = u = s.id || (operational_in_cache s u && live u) in
        if Int_set.for_all recovered closure then begin
          let my_versions = Store.versions s.store in
          let best =
            Int_set.fold
              (fun u ((_, best_vv) as acc) ->
                if u = s.id then acc
                else
                  match s.cache.(u) with
                  | Some (info : Wire.site_info) ->
                      if newer info.versions best_vv then (u, info.versions) else acc
                  | None -> acc)
              closure (s.id, my_versions)
          in
          match best with
          | u, _ when u = s.id ->
              (* We hold the most recent data ourselves: no exchange needed
                 (the [s = t] case of Figure 5). *)
              become_available t s
          | u, _ -> repair_from t s u
        end
  end

and start_recovery t (s : Runtime.site) =
  if s.state = Types.Comatose && not s.repairing then begin
    let expected = Runtime.up_peers t.rt s.id in
    let rid =
      Runtime.begin_round t.rt ~coordinator:s.id ~expected ~on_complete:(fun outcome _replies ->
          (* Replies were folded into the cache on arrival; with the round
             now settled (or timed out), evaluate the select. *)
          match outcome with Runtime.Aborted -> () | Runtime.Complete | Runtime.Timeout -> evaluate t s)
    in
    Runtime.broadcast t.rt ~op:Net.Message.Recovery ~from:s.id
      (Wire.Recovery_probe { rid; info = Runtime.make_info t.rt s.id })
  end

let on_repair t site_id =
  Runtime.repair_site t.rt site_id (fun s ->
      Runtime.set_state t.rt s.id Types.Comatose;
      start_recovery t s)

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

let handle t (s : Runtime.site) ~from msg =
  match msg with
  | Wire.Block_update { rid; block; version; data; carried_w } ->
      (* The store absorbs the update whenever the site is up, comatose
         included: versions are monotone so applying is always safe, and a
         comatose site must not miss an update whose delivery races the
         version-vector exchange of its own recovery — it would finish
         recovering with a copy staler than the one the writer believes it
         holds.  Only available sites acknowledge and learn W: a comatose
         site is not yet part of any write's was-available set. *)
      if s.state <> Types.Failed then absorb s block version data;
      if s.state = Types.Available && t.variant = Standard then begin
        Runtime.set_w t.rt s.id (Int_set.add s.id (Int_set.add from carried_w));
        match rid with
        | Some rid ->
            Runtime.send t.rt ~op:Net.Message.Write ~from:s.id ~dst:from
              (Wire.Write_ack { rid; block })
        | None -> ()
      end
  | Wire.Batch_update { rid; writes; carried_w } ->
      (* Same absorption rule as Block_update, applied per block. *)
      if s.state <> Types.Failed then
        List.iter (fun (block, version, data) -> absorb s block version data) writes;
      if s.state = Types.Available && t.variant = Standard then begin
        Runtime.set_w t.rt s.id (Int_set.add s.id (Int_set.add from carried_w));
        match rid with
        | Some rid ->
            Runtime.send t.rt ~op:Net.Message.Write ~from:s.id ~dst:from
              (Wire.Batch_ack { rid; blocks = List.map (fun (b, _, _) -> b) writes })
        | None -> ()
      end
  | Wire.Write_ack { rid; _ } | Wire.Batch_ack { rid; _ } -> Runtime.reply t.rt ~rid ~from msg
  | Wire.Recovery_probe { rid; info } ->
      if s.state <> Types.Failed then begin
        Runtime.cache_info t.rt s.id info;
        Runtime.send t.rt ~op:Net.Message.Recovery ~from:s.id ~dst:from
          (Wire.Recovery_reply { rid; info = Runtime.make_info t.rt s.id });
        if s.state = Types.Comatose then evaluate t s
      end
  | Wire.Recovery_reply { rid; info } ->
      Runtime.cache_info t.rt s.id info;
      if rid >= 0 then Runtime.reply t.rt ~rid ~from msg;
      if s.state = Types.Comatose then evaluate t s
  | Wire.Vv_send { rid; versions; w_of_sender = _ } ->
      if s.state <> Types.Failed then begin
        (* Figure 5's trailing send(t, W_s) collapses to W_t <- W_t ∪ {s}
           since s will set W_s = W_t ∪ {s}; the piggyback spares the extra
           transmission. *)
        if t.variant = Standard then Runtime.set_w t.rt s.id (Int_set.add from s.w);
        let reply () =
          (* Only verified blocks travel: a transfer never ships
             quarantined bytes, and the reply's vector claims only what we
             can prove. *)
          let updates = Durable.verified_blocks_newer_than s.durable versions in
          Runtime.send t.rt ~op:Net.Message.Recovery ~from:s.id ~dst:from
            (Wire.Vv_reply
               {
                 rid;
                 versions = Durable.effective_versions s.durable;
                 updates;
                 w_of_source = s.w;
               })
        in
        (* A quarantined copy the requester needs — our stored version is
           above what it claims — cannot travel.  Heal those blocks from a
           current peer first, then answer: otherwise the recovering site
           would come back with a silent gap where our rotted block should
           be, serve stale version-0 reads and reassign used version
           numbers.  A repair that finds no current peer leaves the block
           quarantined and the reply simply cannot cover it. *)
        let needy = ref [] in
        for b = Store.capacity s.store - 1 downto 0 do
          if (not (Durable.checksum_ok s.durable b)) && Store.version s.store b > Vv.get versions b
          then needy := b :: !needy
        done;
        (* The repair rounds park this handler's continuation behind wire
           round-trips, and the site can fail in the meantime: [fail_site]
           takes the transport down and then aborts our rounds, so the
           aborted repair's callback lands here synchronously with the
           sender already unreachable (and the state flip to Failed still
           pending).  A dead site heals nothing and answers nothing — the
           requester's repair_from treats the missing reply as a dead
           source and probes afresh. *)
        let rec heal = function
          | _ when not (Runtime.Transport.is_up (Runtime.net t.rt) s.id) -> ()
          | [] -> reply ()
          | b :: rest -> read_repair t ~site:s.id ~block:b (fun _ -> heal rest)
        in
        heal !needy
      end
  | Wire.Vv_reply { rid; _ } -> Runtime.reply t.rt ~rid ~from msg
  | Wire.Block_request { rid; block } ->
      (* Peer read-repair: serve what we can prove — the effective version
         and its verified contents, or (0, zero) when our own copy is
         quarantined.  The requester discards unhelpful replies. *)
      if s.state <> Types.Failed then begin
        let version = Durable.effective_version s.durable block in
        let data = if version = 0 then Blockdev.Block.zero else Store.read s.store block in
        Runtime.send t.rt ~op:Net.Message.Repair ~from:s.id ~dst:from
          (Wire.Block_transfer { rid; block; version; data })
      end
  | Wire.Block_transfer { rid; _ } -> Runtime.reply t.rt ~rid ~from msg
  | Wire.Vote_request _ | Wire.Vote_reply _ | Wire.Group_fix _ | Wire.Batch_vote_request _
  | Wire.Batch_vote_reply _ | Wire.Batch_request _ | Wire.Batch_transfer _ ->
      (* Voting traffic is meaningless under a copy scheme. *)
      ()

let install_liveness_tracking t =
  (* Idealised W maintenance: every available site always knows the exact
     set of available sites.  Models the instantaneous failure detection
     assumed by the Figure 7 chain; costs no messages. *)
  Runtime.on_state_change t.rt (fun _ _ ->
      let avail =
        Array.fold_left
          (fun acc (p : Runtime.site) -> if p.state = Types.Available then Int_set.add p.id acc else acc)
          Int_set.empty (Runtime.sites t.rt)
      in
      if not (Int_set.is_empty avail) then
        Array.iter
          (fun (p : Runtime.site) ->
            if p.state = Types.Available then Runtime.set_w t.rt p.id avail)
          (Runtime.sites t.rt))

let create rt variant =
  let t = { rt; variant } in
  Runtime.set_dispatch rt (fun s ~from msg -> handle t s ~from msg);
  if variant = Standard && (Runtime.config rt).track_liveness then install_liveness_tracking t;
  t

let any_available t =
  Array.exists (fun (s : Runtime.site) -> s.state = Types.Available) (Runtime.sites t.rt)
