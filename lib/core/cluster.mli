(** The replicated block cluster: the public face of the core library.

    A cluster binds a simulation engine, a network, [n] block-holding sites
    and one of the three consistency protocols, and exposes block reads and
    writes, failure injection, traffic counters and an availability monitor.

    Operations are asynchronous (the callback fires through the engine);
    {!read_sync} and {!write_sync} drive the engine until the operation
    settles, for clients written in a direct style (the file system, the
    examples). *)

type t

val create : Config.t -> t
val config : t -> Config.t

(** [runtime t] is the underlying runtime, for tooling that needs raw site
    access (checkpointing, white-box tests).  Mutating it bypasses the
    protocol; ordinary clients should never need it. *)
val runtime : t -> Runtime.t
val engine : t -> Sim.Engine.t
val traffic : t -> Net.Traffic.t
val network : t -> Runtime.Transport.t
val monitor : t -> Availability_monitor.t
val scheme : t -> Types.scheme
val n_sites : t -> int
val n_blocks : t -> int

(** {1 Operation observers}

    Lightweight instrumentation for the checking subsystem: every
    completed operation (successful or not) is reported to subscribed
    observers with its virtual invocation/response times, payload and
    version.  With no observer subscribed the operation path is untouched. *)

module Observe : sig
  type kind = Read | Write

  type event = {
    kind : kind;
    site : int;  (** the site the operation was issued at *)
    block : int;
    invoked : float;  (** virtual time the operation entered the cluster *)
    responded : float;  (** virtual time its callback fired *)
    payload : Blockdev.Block.t option;
        (** data written (all writes) or returned (successful reads) *)
    version : int option;  (** version assigned/served, on success *)
    error : Types.failure_reason option;
  }
end

val add_observer : t -> (Observe.event -> unit) -> unit
(** Subscribe to operation completions; observers fire in subscription
    order, at the virtual time of the response, before the operation's own
    callback. *)

(** {1 Block access} *)

val read :
  t -> ?deadline:float -> site:int -> block:Blockdev.Block.id -> (Types.read_result -> unit) -> unit
(** With a service model configured the operation first rides the
    coordinator site's bounded work queue (admission): a full queue fails
    it immediately with [Overloaded].  With hedging configured
    ([Config.robustness.hedge]) a second copy of the read races at another
    available site after the configured latency quantile; the first answer
    wins, and a hedge answer only counts when its version is at or above
    what the primary site already stores.  Hedging also turns a full
    primary queue into spillover rather than rejection: the read is
    diverted to the hedge site immediately and fails with [Overloaded]
    only when no breaker-trusted peer can take it either.  [deadline]
    (absolute virtual time) propagates into every protocol round the
    operation opens. *)

val write :
  t ->
  ?deadline:float ->
  site:int ->
  block:Blockdev.Block.id ->
  Blockdev.Block.t ->
  (Types.write_result -> unit) ->
  unit

val read_sync : ?deadline:float -> t -> site:int -> block:Blockdev.Block.id -> Types.read_result
(** Issue the read and run the engine until it settles.  Other pending
    simulation events up to that moment run too (this is a simulation,
    time passes). *)

val write_sync :
  ?deadline:float -> t -> site:int -> block:Blockdev.Block.id -> Blockdev.Block.t -> Types.write_result

(** {1 Group commit}

    Batched block access.  Blocks must be distinct, in range and
    non-empty ([Invalid_argument] otherwise).  A batch of one is
    delegated to the single-block path, so it is bit-identical to
    {!read}/{!write} — same wire traffic, same observer events.  Larger
    batches run the scheme's amortized group round (one vote collection
    and one update multicast for voting; one update multicast for the
    copy schemes); dynamic voting has no shared round — its per-block
    update groups cannot ride one message — and transparently chains the
    single-block operations instead.  Observers see one event per block
    of the group. *)

val read_blocks :
  t ->
  ?deadline:float ->
  site:int ->
  blocks:Blockdev.Block.id list ->
  (Types.batch_read_result -> unit) ->
  unit

val write_blocks :
  t ->
  ?deadline:float ->
  site:int ->
  (Blockdev.Block.id * Blockdev.Block.t) list ->
  (Types.batch_write_result -> unit) ->
  unit

val read_blocks_sync :
  ?deadline:float -> t -> site:int -> blocks:Blockdev.Block.id list -> Types.batch_read_result

val write_blocks_sync :
  ?deadline:float ->
  t ->
  site:int ->
  (Blockdev.Block.id * Blockdev.Block.t) list ->
  Types.batch_write_result

val read_sync_retry :
  ?deadline:float ->
  ?rng:Random.State.t ->
  t ->
  policy:Retry.policy ->
  stats:Retry.stats ->
  site:int ->
  block:Blockdev.Block.id ->
  Types.read_result
(** {!read_sync} wrapped in bounded retries with backoff (see {!Retry}):
    under injected message loss a quorum round that loses a vote is retried
    after a backoff instead of surfacing its first transient error.
    [rng] drives decorrelated jitter (mandatory when the policy asks for
    it); [deadline] spans the whole retried operation. *)

val write_sync_retry :
  ?deadline:float ->
  ?rng:Random.State.t ->
  t ->
  policy:Retry.policy ->
  stats:Retry.stats ->
  site:int ->
  block:Blockdev.Block.id ->
  Blockdev.Block.t ->
  Types.write_result

(** {1 Failure injection} *)

val fail_site : t -> int -> unit
val repair_site : t -> int -> unit
(** Starts the scheme's recovery; the site may stay comatose for a while
    (run the engine to let recovery complete). *)

val partition : t -> int list list -> unit
(** Split network connectivity into the given groups (see
    {!Runtime.Transport.partition}).  Available copy is documented not to
    survive this; the demo and the adversarial tests use it to show why. *)

val heal : t -> unit
(** Restore full connectivity. *)

val faults : t -> Net.Faults.t option
(** The network's fault injector, if the config's profile was not pristine
    (or one was installed later) — for counter reporting. *)

val install_faults : t -> Net.Faults.t -> unit
(** Install a fault injector on the running cluster's network (per-link
    overrides included); affects deliveries from now on. *)

val corrupt_link : t -> from:int -> dst:int -> unit
(** Turn one directed link into a persistent corruptor (every delivery
    gets a bit flipped): the [wire-corrupt] chaos event.  No-op without
    an installed injector. *)

val heal_link : t -> from:int -> dst:int -> unit
(** Restore a corrupted link to the injector's default profile. *)

(** {1 Hardened-ingress counters (encoded delivery)}

    All read zero when the config leaves [encoded_delivery] off. *)

val frames_rejected : t -> int
(** Frames the ingress decode refused, all reject classes summed. *)

val frames_quarantined : t -> int
(** Frames discarded undecoded under poison-frame quarantine. *)

val frames_retransmitted : t -> int
(** Link-layer redeliveries of rejected frames. *)

val quarantine_trips : t -> int
(** Times some (receiver, sender) link entered quarantine. *)

val corrupted_deliveries : t -> int
(** Deliveries the injector actually damaged. *)

val corrupt_rejected : t -> int
val corrupt_quarantined : t -> int
val corrupt_survived : t -> int

val corruption_conserved : t -> bool
(** [corrupted_deliveries = corrupt_rejected + corrupt_quarantined +
    corrupt_survived] — every injected corruption accounted for. *)

(** {1 Storage faults}

    Media-level fault injection into a site's {!Blockdev.Durable_store}.
    All default-off: a cluster that never calls these behaves bit-identically
    to one without the durable layer. *)

val arm_torn_write : ?mode:Blockdev.Durable_store.tear -> t -> int -> unit
(** Arm site [i]'s next crash ({!fail_site}) to tear its most recent
    journaled write (default [Torn_apply]: the intention survives and the
    recovery scrub replays it). *)

val inject_bitrot : t -> site:int -> block:Blockdev.Block.id -> unit
(** Latent sector error: silently rot one stored copy.  Detected at the
    next checksum verification; the protocols then quarantine the copy and
    heal it from a peer (read-repair or recovery transfer). *)

val replace_disk : t -> int -> unit
(** Swap site [i]'s medium: the site is failed (if up) and its disk reset
    to blank — zeroed blocks at version 0, metadata at defaults.  A later
    {!repair_site} regenerates the replica through the ordinary recovery
    exchange (the paper's fresh-replica case). *)

val checksum_ok : t -> site:int -> block:Blockdev.Block.id -> bool
val effective_version : t -> site:int -> block:Blockdev.Block.id -> int
(** Stored version if the checksum verifies, 0 otherwise. *)

val last_scrub : t -> int -> Blockdev.Durable_store.scrub_report option
(** Report of site [i]'s most recent recovery-time scrub. *)

val storage_counters : t -> Blockdev.Durable_store.counters
(** Fresh record summing every site's storage-fault counters. *)

(** {1 Overload and gray failure}

    Counters and knobs of the robustness stack.  All of them read zero /
    do nothing unless the config installed a service model or enabled the
    corresponding feature. *)

val client_shed : t -> int
(** Client operations rejected at admission (full entry queue). *)

val hedged : t -> int
(** Reads that issued a hedge at a second coordinator. *)

val hedge_wins : t -> int
(** Hedged reads whose hedge answered first (with an acceptable version). *)

val breaker_trips : t -> int
(** Closed-to-open circuit-breaker transitions, summed over all
    coordinator/peer pairs. *)

val messages_shed : t -> int
(** Protocol messages dropped at full per-site work queues (distinct from
    {!client_shed}, which counts whole client operations). *)

val server : t -> int -> Sim.Server.t option
(** Site [i]'s work queue, when a service model is installed. *)

val set_rate_factor : t -> int -> float -> unit
(** Gray failure: scale site [i]'s service times by the factor (e.g. 10.0
    = a 10x-slow site that is still up and still answers). *)

val flood_site : t -> int -> count:int -> unit
(** Burst-inject [count] queue jobs at site [i] (chaos: queue pressure
    without wire traffic). *)

val read_latency : t -> Util.Stats.Histogram.t option
(** The completed-read latency histogram behind the hedge delay, when
    hedging is configured. *)

val site_state : t -> int -> Types.site_state
val site_versions : t -> int -> Blockdev.Version_vector.t
val site_was_available : t -> int -> Types.Int_set.t

(** {1 System state} *)

val system_available : t -> bool
(** The scheme's availability predicate: quorum of up sites (voting) or at
    least one available site (copy schemes). *)

val run_until : t -> float -> unit
(** Advance virtual time (delivering messages, completing recoveries). *)

val settle : t -> unit
(** Run the engine dry — only meaningful when no recurrent processes (e.g.
    failure generators) are attached. *)

val consistent_available_stores : t -> bool
(** Invariant checked by the test-suite: all available sites hold identical
    stores (contents and versions).  Vacuously true with fewer than two
    available sites.  Under voting, checked only across up-to-date sites
    (stale but reachable copies are legal there), so this flavour asserts
    instead that every quorum's maximum version is held by some up site.
    Checksum-aware throughout: a quarantined (checksum-invalid) copy is
    excused — it refuses to serve rather than serving divergent bytes —
    and version comparisons use effective (verified) versions. *)
