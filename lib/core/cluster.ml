module Durable = Blockdev.Durable_store

type protocol = Voting_p of Voting.t | Copy_p of Copy_protocol.t | Dynamic_p of Dynamic_voting.t

module Observe = struct
  type kind = Read | Write

  type event = {
    kind : kind;
    site : int;
    block : int;
    invoked : float;
    responded : float;
    payload : Blockdev.Block.t option;
    version : int option;
    error : Types.failure_reason option;
  }
end

type t = {
  rt : Runtime.t;
  protocol : protocol;
  monitor : Availability_monitor.t;
  mutable observers : (Observe.event -> unit) list;
  (* Robustness bookkeeping; all zero / None when the features are off. *)
  mutable client_shed : int;
  mutable hedged : int;
  mutable hedge_wins : int;
  read_lat : Util.Stats.Histogram.t option;
      (** completed-read latencies, allocated only when hedging is
          configured — its quantiles set the hedge delay *)
}

let system_available_rt protocol =
  match protocol with
  | Voting_p v -> Voting.quorum_up v
  | Copy_p c -> Copy_protocol.any_available c
  | Dynamic_p d -> Dynamic_voting.service_available d

let create (config : Config.t) =
  let rt = Runtime.create config in
  let protocol =
    match config.scheme with
    | Types.Voting -> Voting_p (Voting.create rt)
    | Types.Available_copy -> Copy_p (Copy_protocol.create rt Copy_protocol.Standard)
    | Types.Naive_available_copy -> Copy_p (Copy_protocol.create rt Copy_protocol.Naive)
    | Types.Dynamic_voting -> Dynamic_p (Dynamic_voting.create rt)
  in
  let monitor = Availability_monitor.create (Runtime.engine rt) ~initially:true in
  let read_lat =
    match config.robustness.Robustness.hedge with
    | None -> None
    | Some _ ->
        (* Latencies past op_timeout land in the overflow counter; the
           quantile is over in-range samples, which is exactly the
           population a useful hedge delay comes from. *)
        Some (Util.Stats.Histogram.create ~lo:0.0 ~hi:config.op_timeout ~bins:64)
  in
  let t =
    { rt; protocol; monitor; observers = []; client_shed = 0; hedged = 0; hedge_wins = 0; read_lat }
  in
  let engine = Runtime.engine rt in
  Runtime.on_state_change rt (fun _ _ ->
      Availability_monitor.record monitor (system_available_rt protocol);
      (* Availability predicates read store versions, which in-flight
         updates are still propagating; re-sample once the wires are
         quiet so a transient skew is not latched until the next site
         event (the dynamic scheme is sensitive to this). *)
      ignore
        (Sim.Engine.schedule engine ~delay:config.op_timeout (fun () ->
             Availability_monitor.record monitor (system_available_rt protocol))
          : Sim.Engine.handle));
  t

let config t = Runtime.config t.rt
let runtime t = t.rt
let engine t = Runtime.engine t.rt
let traffic t = Runtime.traffic t.rt
let network t = Runtime.net t.rt
let monitor t = t.monitor
let scheme t = (config t).scheme
let n_sites t = Runtime.n_sites t.rt
let n_blocks t = (config t).n_blocks

let check_block t block =
  if block < 0 || block >= n_blocks t then invalid_arg "Cluster: block index out of range"

let add_observer t f = t.observers <- t.observers @ [ f ]

(* Wrap an operation callback so observers see a completion event.  When no
   observer is attached at invocation the callback passes through untouched
   — the legacy path pays nothing. *)
let observed_read t ~site ~block callback =
  match t.observers with
  | [] -> callback
  | _ ->
      let invoked = Sim.Engine.now (engine t) in
      fun result ->
        let responded = Sim.Engine.now (engine t) in
        let event =
          match result with
          | Ok (data, version) ->
              { Observe.kind = Observe.Read; site; block; invoked; responded;
                payload = Some data; version = Some version; error = None }
          | Error e ->
              { Observe.kind = Observe.Read; site; block; invoked; responded; payload = None;
                version = None; error = Some e }
        in
        List.iter (fun f -> f event) t.observers;
        callback result

let observed_write t ~site ~block ~data callback =
  match t.observers with
  | [] -> callback
  | _ ->
      let invoked = Sim.Engine.now (engine t) in
      fun result ->
        let responded = Sim.Engine.now (engine t) in
        let event =
          match result with
          | Ok version ->
              { Observe.kind = Observe.Write; site; block; invoked; responded;
                payload = Some data; version = Some version; error = None }
          | Error e ->
              { Observe.kind = Observe.Write; site; block; invoked; responded;
                payload = Some data; version = None; error = Some e }
        in
        List.iter (fun f -> f event) t.observers;
        callback result

(* Stable-storage sync cost: a successful client-visible write means the
   coordinator's journal commit (its fsync) retired, so the completion is
   delayed by the configured profile's fsync latency before the caller —
   and the observers, which wrap outside this — see it.  One charge per
   client operation: a batch group-commits through one intention record,
   which is exactly the amortization the batch path exists for.  Replica
   fsyncs overlap the network ack path and are not separately charged
   (documented in DESIGN.md §4i).  [None] schedules nothing — the exact
   legacy completion path. *)
let with_sync_cost t callback =
  match (Runtime.config t.rt).Config.sync_profile with
  | None -> callback
  | Some p -> (
      fun result ->
        match result with
        | Ok _ ->
            ignore
              (Sim.Engine.schedule (engine t)
                 ~delay:(Blockdev.Sync_cost.fsync_latency p)
                 (fun () -> callback result)
                : Sim.Engine.handle)
        | Error _ -> callback result)

(* Batch observers report one event per block of the group, so a history
   checker sees the same shape of events whichever path produced them. *)
let observed_read_blocks t ~site ~blocks callback =
  match t.observers with
  | [] -> callback
  | _ ->
      let invoked = Sim.Engine.now (engine t) in
      fun result ->
        let responded = Sim.Engine.now (engine t) in
        (match result with
        | Ok results ->
            List.iter2
              (fun block (data, version) ->
                let event =
                  { Observe.kind = Observe.Read; site; block; invoked; responded;
                    payload = Some data; version = Some version; error = None }
                in
                List.iter (fun f -> f event) t.observers)
              blocks results
        | Error e ->
            List.iter
              (fun block ->
                let event =
                  { Observe.kind = Observe.Read; site; block; invoked; responded; payload = None;
                    version = None; error = Some e }
                in
                List.iter (fun f -> f event) t.observers)
              blocks);
        callback result

let observed_write_blocks t ~site ~writes callback =
  match t.observers with
  | [] -> callback
  | _ ->
      let invoked = Sim.Engine.now (engine t) in
      fun result ->
        let responded = Sim.Engine.now (engine t) in
        (match result with
        | Ok versions ->
            List.iter2
              (fun (block, data) version ->
                let event =
                  { Observe.kind = Observe.Write; site; block; invoked; responded;
                    payload = Some data; version = Some version; error = None }
                in
                List.iter (fun f -> f event) t.observers)
              writes versions
        | Error e ->
            List.iter
              (fun (block, data) ->
                let event =
                  { Observe.kind = Observe.Write; site; block; invoked; responded;
                    payload = Some data; version = None; error = Some e }
                in
                List.iter (fun f -> f event) t.observers)
              writes);
        callback result

let check_batch t blocks =
  if blocks = [] then invalid_arg "Cluster: empty batch";
  List.iter (check_block t) blocks;
  if List.length (List.sort_uniq Int.compare blocks) <> List.length blocks then
    invalid_arg "Cluster: batch blocks must be distinct"

(* Admission at the cluster boundary: with a service model installed,
   every client operation enters its coordinator site's bounded work queue
   and pays the seeded per-client service cost before the protocol runs; a
   full queue rejects the operation immediately with [Overloaded] instead
   of letting it pile onto a site that cannot keep up.  Without a service
   model ([`Direct]) the thunk runs synchronously — the exact legacy
   path. *)
let enter t ~site ~fail thunk =
  match Runtime.Transport.submit_client (Runtime.net t.rt) ~site thunk with
  | `Direct -> thunk ()
  | `Queued -> ()
  | `Shed ->
      t.client_shed <- t.client_shed + 1;
      fail Types.Overloaded

(* Feed the hedge-delay histogram with every completed read's latency
   (queueing included — the observer clock starts at submission). *)
let with_read_latency t callback =
  match t.read_lat with
  | None -> callback
  | Some hist ->
      let invoked = Sim.Engine.now (engine t) in
      fun r ->
        Util.Stats.Histogram.add hist (Sim.Engine.now (engine t) -. invoked);
        callback r

let hedge_delay t (h : Robustness.hedge) =
  match t.read_lat with
  | Some hist when Util.Stats.Histogram.in_range hist >= 20 ->
      let q = Util.Stats.Histogram.quantile hist h.Robustness.quantile in
      if Float.is_nan q then h.Robustness.floor else Float.max h.Robustness.floor q
  | Some _ | None -> h.Robustness.floor

(* Second coordinator for a hedged read: the lowest-id available site other
   than the primary that the primary's breakers still trust. *)
let hedge_peer t ~site =
  let sites = Runtime.sites t.rt in
  let n = Array.length sites in
  let rec go i =
    if i >= n then None
    else if
      i <> site
      && sites.(i).Runtime.state = Types.Available
      && Runtime.breaker_allows t.rt ~coordinator:site ~peer:i
    then Some i
    else go (i + 1)
  in
  go 0

let protocol_read t ?deadline ~site ~block callback =
  match t.protocol with
  | Voting_p v -> Voting.read v ?deadline ~site ~block callback
  | Copy_p c -> Copy_protocol.read c ?deadline ~site ~block callback
  | Dynamic_p d -> Dynamic_voting.read d ?deadline ~site ~block callback

let read t ?deadline ~site ~block callback =
  check_block t block;
  let callback = observed_read t ~site ~block callback in
  let callback = with_read_latency t callback in
  match (config t).robustness.Robustness.hedge with
  | None -> enter t ~site ~fail:(fun e -> callback (Error e)) (fun () ->
        protocol_read t ?deadline ~site ~block callback)
  | Some h ->
      (* Hedged read: race a second copy of the read at another coordinator
         after the configured latency quantile.  The hedge rides the peer's
         own entry queue (that load is real), and its result only counts if
         its version is at or above what the primary site already stores —
         a hedge may reduce tail latency, never freshness.  First answer
         wins; hedge failures are ignored (the primary's bounded rounds
         always settle the operation). *)
      let settled = ref false in
      let finish r =
        if not !settled then begin
          settled := true;
          callback r
        end
      in
      (* A hedge read at [peer]: counts only if its version is at or above
         what the primary site already stores (the single client writes
         through the primary, so its store holds the newest committed
         version even when a peer missed a shed update) — a hedge may
         reduce tail latency, never freshness.  [miss] decides what a
         stale answer or an error means: nothing for a timed hedge (the
         primary's bounded rounds settle the operation), surfaced for an
         admission spillover (there is no primary to fall back on). *)
      let hedge_read ~peer ~miss =
        t.hedged <- t.hedged + 1;
        let version_floor =
          Blockdev.Store.version (Runtime.site t.rt site).Runtime.store block
        in
        protocol_read t ?deadline ~site:peer ~block (function
          | Ok (data, version) when version >= version_floor ->
              if not !settled then begin
                t.hedge_wins <- t.hedge_wins + 1;
                finish (Ok (data, version))
              end
          | (Ok _ | Error _) as r -> miss r)
      in
      let submit_at peer work ~shed =
        match Runtime.Transport.submit_client (Runtime.net t.rt) ~site:peer work with
        | `Direct -> work ()
        | `Queued -> ()
        | `Shed -> shed ()
      in
      let shed_for_real () =
        t.client_shed <- t.client_shed + 1;
        finish (Error Types.Overloaded)
      in
      let primary () = protocol_read t ?deadline ~site ~block finish in
      (match Runtime.Transport.submit_client (Runtime.net t.rt) ~site primary with
      | `Direct -> primary ()
      | `Queued -> ()
      | `Shed -> (
          (* Admission spillover: the primary's queue is full, so divert
             the read to the hedge peer right away instead of failing it —
             overflow capacity from a site the breakers still trust.  If
             no peer can take it either, the read is shed for real. *)
          match hedge_peer t ~site with
          | None -> shed_for_real ()
          | Some peer ->
              submit_at peer ~shed:shed_for_real (fun () ->
                  hedge_read ~peer ~miss:(function
                    | Ok _ -> shed_for_real ()
                    | Error _ as e -> finish e))));
      if not !settled then
        ignore
          (Sim.Engine.schedule (engine t) ~delay:(hedge_delay t h) (fun () ->
               if not !settled then
                 match hedge_peer t ~site with
                 | None -> ()
                 | Some peer ->
                     submit_at peer
                       ~shed:(fun () -> ())
                       (fun () -> hedge_read ~peer ~miss:(fun _ -> ())))
            : Sim.Engine.handle)

let write t ?deadline ~site ~block data callback =
  check_block t block;
  (* [with_sync_cost] outermost: the protocol's completion first pays the
     journal fsync, then the observers timestamp the (post-fsync) response
     the client actually experiences. *)
  let callback = with_sync_cost t (observed_write t ~site ~block ~data callback) in
  enter t ~site ~fail:(fun e -> callback (Error e)) (fun () ->
      match t.protocol with
      | Voting_p v -> Voting.write v ?deadline ~site ~block data callback
      | Copy_p c -> Copy_protocol.write c ?deadline ~site ~block data callback
      | Dynamic_p d -> Dynamic_voting.write d ?deadline ~site ~block data callback)

(* A batch of one takes the single-block path exactly — same wire
   messages, same observer events — so defaults are bit-identical to the
   unbatched cluster.  Dynamic voting keeps per-block update groups that
   a shared vote round cannot carry, so it falls back to chaining the
   single-block operations (no amortization, full correctness). *)
let read_blocks t ?deadline ~site ~blocks callback =
  check_batch t blocks;
  match blocks with
  | [ block ] -> read t ?deadline ~site ~block (fun r -> callback (Result.map (fun x -> [ x ]) r))
  | _ ->
      let callback = observed_read_blocks t ~site ~blocks callback in
      enter t ~site ~fail:(fun e -> callback (Error e)) (fun () ->
          match t.protocol with
          | Voting_p v -> Voting.read_batch v ?deadline ~site ~blocks callback
          | Copy_p c -> Copy_protocol.read_batch c ?deadline ~site ~blocks callback
          | Dynamic_p d ->
              let rec chain acc = function
                | [] -> callback (Ok (List.rev acc))
                | b :: rest ->
                    Dynamic_voting.read d ?deadline ~site ~block:b (function
                      | Ok r -> chain (r :: acc) rest
                      | Error e -> callback (Error e))
              in
              chain [] blocks)

let write_blocks t ?deadline ~site writes callback =
  check_batch t (List.map fst writes);
  match writes with
  | [ (block, data) ] ->
      write t ?deadline ~site ~block data (fun r -> callback (Result.map (fun v -> [ v ]) r))
  | _ ->
      let callback = with_sync_cost t (observed_write_blocks t ~site ~writes callback) in
      enter t ~site ~fail:(fun e -> callback (Error e)) (fun () ->
          match t.protocol with
          | Voting_p v -> Voting.write_batch v ?deadline ~site writes callback
          | Copy_p c -> Copy_protocol.write_batch c ?deadline ~site writes callback
          | Dynamic_p d ->
              let rec chain acc = function
                | [] -> callback (Ok (List.rev acc))
                | (b, data) :: rest ->
                    Dynamic_voting.write d ?deadline ~site ~block:b data (function
                      | Ok v -> chain (v :: acc) rest
                      | Error e -> callback (Error e))
              in
              chain [] writes)

(* Drive the engine until the callback lands.  Operations always settle in
   bounded virtual time (rounds carry timeouts), so the loop terminates even
   with recurrent failure processes scheduled. *)
let run_sync t issue =
  let result = ref None in
  issue (fun r -> result := Some r);
  let engine = engine t in
  let rec drive () =
    match !result with
    | Some r -> r
    | None ->
        if Sim.Engine.step engine then drive ()
        else
          (* Queue drained without an answer: the callback path was lost to
             a coordinator failure.  Report the local site as gone. *)
          Error Types.Site_not_available
  in
  drive ()

let read_sync ?deadline t ~site ~block = run_sync t (fun k -> read t ?deadline ~site ~block k)

let write_sync ?deadline t ~site ~block data =
  run_sync t (fun k -> write t ?deadline ~site ~block data k)

let read_blocks_sync ?deadline t ~site ~blocks =
  run_sync t (fun k -> read_blocks t ?deadline ~site ~blocks k)

let write_blocks_sync ?deadline t ~site writes =
  run_sync t (fun k -> write_blocks t ?deadline ~site writes k)

(* Retry-aware synchronous operations: quorum and copy operations survive
   transient message loss instead of failing on the first lossy round.
   The deadline spans the whole retried operation — once it passes, the
   per-attempt entry guards fail fast and the policy's own deadline check
   stops the loop. *)
let read_sync_retry ?deadline ?rng t ~policy ~stats ~site ~block =
  Retry.run policy ~engine:(engine t) ~stats ?rng (fun ~attempt:_ ->
      read_sync ?deadline t ~site ~block)

let write_sync_retry ?deadline ?rng t ~policy ~stats ~site ~block data =
  Retry.run policy ~engine:(engine t) ~stats ?rng (fun ~attempt:_ ->
      write_sync ?deadline t ~site ~block data)

let faults t = Runtime.Transport.faults (Runtime.net t.rt)

let install_faults t f = Runtime.Transport.install_faults (Runtime.net t.rt) f

(* Per-link corruption control for chaos events: a wire-corrupt episode
   turns one directed link into a persistent corruptor; heal restores the
   injector's ambient profile.  Requires an installed injector (encoded
   envelopes always run with one) — without it there are no corruption
   draws to make, so this is a documented no-op. *)
let corrupt_link t ~from ~dst =
  match faults t with
  | Some f -> Net.Faults.set_link f ~from ~dst Net.Faults.persistent_corruptor
  | None -> ()

let heal_link t ~from ~dst =
  match faults t with
  | Some f -> Net.Faults.set_link f ~from ~dst (Net.Faults.default_profile f)
  | None -> ()

let frames_rejected t = Net.Traffic.frames_rejected (Runtime.Transport.traffic (Runtime.net t.rt))

let frames_quarantined t =
  Net.Traffic.frames_quarantined (Runtime.Transport.traffic (Runtime.net t.rt))

let frames_retransmitted t = Runtime.Transport.frames_retransmitted (Runtime.net t.rt)
let quarantine_trips t = Runtime.Transport.quarantine_trips (Runtime.net t.rt)

let corrupted_deliveries t =
  match faults t with Some f -> Net.Faults.corrupted_deliveries f | None -> 0

let corrupt_rejected t = Runtime.Transport.corrupt_rejected (Runtime.net t.rt)
let corrupt_quarantined t = Runtime.Transport.corrupt_quarantined (Runtime.net t.rt)
let corrupt_survived t = Runtime.Transport.corrupt_survived (Runtime.net t.rt)
let corruption_conserved t = Runtime.Transport.corruption_conserved (Runtime.net t.rt)

let fail_site t i =
  Runtime.fail_site t.rt i;
  Availability_monitor.record t.monitor (system_available_rt t.protocol)

let repair_site t i =
  (match t.protocol with
  | Voting_p v -> Voting.on_repair v i
  | Copy_p c -> Copy_protocol.on_repair c i
  | Dynamic_p d -> Dynamic_voting.on_repair d i);
  Availability_monitor.record t.monitor (system_available_rt t.protocol)

let partition t groups = Runtime.Transport.partition (Runtime.net t.rt) groups
let heal t = Runtime.Transport.heal (Runtime.net t.rt)

(* ------------------------------------------------------------------ *)
(* Storage faults                                                      *)
(* ------------------------------------------------------------------ *)

let check_site t i =
  if i < 0 || i >= n_sites t then invalid_arg "Cluster: site index out of range"

let arm_torn_write ?mode t i =
  check_site t i;
  Durable.arm_torn_write ?mode (Runtime.site t.rt i).durable

let inject_bitrot t ~site ~block =
  check_site t site;
  check_block t block;
  Durable.inject_bitrot (Runtime.site t.rt site).durable block

let replace_disk t i =
  check_site t i;
  (* The medium is swapped while the site is down (a running site does not
     lose its disk under it); a later repair brings the blank replica back
     through the ordinary recovery path. *)
  Runtime.fail_site t.rt i;
  Durable.replace_disk (Runtime.site t.rt i).durable;
  Availability_monitor.record t.monitor (system_available_rt t.protocol)

let checksum_ok t ~site ~block =
  check_site t site;
  check_block t block;
  Durable.checksum_ok (Runtime.site t.rt site).durable block

let effective_version t ~site ~block =
  check_site t site;
  check_block t block;
  Durable.effective_version (Runtime.site t.rt site).durable block

let last_scrub t i =
  check_site t i;
  Durable.last_scrub (Runtime.site t.rt i).durable

let storage_counters t =
  let acc = Durable.zero_counters () in
  Array.iter
    (fun (s : Runtime.site) -> Durable.accumulate_counters acc (Durable.counters s.durable))
    (Runtime.sites t.rt);
  acc

(* ------------------------------------------------------------------ *)
(* Robustness: overload control and gray-failure injection             *)
(* ------------------------------------------------------------------ *)

let client_shed t = t.client_shed
let hedged t = t.hedged
let hedge_wins t = t.hedge_wins
let breaker_trips t = Runtime.breaker_trips t.rt
let messages_shed t = Runtime.Transport.total_shed (Runtime.net t.rt)

let server t i =
  check_site t i;
  Runtime.server t.rt i

let set_rate_factor t i f =
  check_site t i;
  Runtime.Transport.set_rate_factor (Runtime.net t.rt) i f

let flood_site t i ~count =
  check_site t i;
  Runtime.Transport.flood_site (Runtime.net t.rt) i ~count

let read_latency t = t.read_lat

let site_state t i = (Runtime.site t.rt i).state
let site_versions t i = Blockdev.Store.versions (Runtime.site t.rt i).store
let site_was_available t i = (Runtime.site t.rt i).w

let system_available t = system_available_rt t.protocol

let run_until t horizon = Sim.Engine.run_until (engine t) horizon
let settle t = Sim.Engine.run (engine t)

let consistent_available_stores t =
  match t.protocol with
  | Dynamic_p d ->
      (* Whenever the dynamic service predicate holds, some up site holds
         a verified copy of the globally newest provable version of every
         block (quorum checks then find it).  Effective versions: a
         quarantined copy claims nothing. *)
      if not (Dynamic_voting.service_available d) then true
      else begin
        let sites = Runtime.sites t.rt in
        let ok = ref true in
        for block = 0 to n_blocks t - 1 do
          let global_max =
            Array.fold_left
              (fun acc (s : Runtime.site) ->
                Int.max acc (Durable.effective_version s.durable block))
              0 sites
          in
          let held_up =
            Array.exists
              (fun (s : Runtime.site) ->
                s.state = Types.Available
                && Durable.effective_version s.durable block = global_max)
              sites
          in
          if not held_up then ok := false
        done;
        !ok
      end
  | Copy_p _ ->
      (* Every pair of verified copies at available sites must agree; a
         quarantined copy is excused — it refuses to serve rather than
         serving divergent bytes, and peer read-repair heals it. *)
      let avail =
        Array.to_list (Runtime.sites t.rt)
        |> List.filter (fun (s : Runtime.site) -> s.state = Types.Available)
      in
      let ok = ref true in
      for block = 0 to n_blocks t - 1 do
        let copies =
          List.filter_map (fun (s : Runtime.site) -> Durable.read_verified s.durable block) avail
        in
        match copies with
        | [] -> ()
        | (d0, v0) :: rest ->
            if not (List.for_all (fun (d, v) -> v = v0 && Blockdev.Block.equal d d0) rest) then
              ok := false
      done;
      !ok
  | Voting_p _ ->
      (* Quorum-intersection safety: whenever enough weight is up to form a
         read quorum, some up site holds a verified copy of the globally
         newest provable version of every block. *)
      let quorum = (config t).quorum in
      let sites = Runtime.sites t.rt in
      let up = Array.to_list sites |> List.filter (fun (s : Runtime.site) -> s.state = Types.Available) in
      let up_weight = Quorum.weight_of quorum (List.map (fun (s : Runtime.site) -> s.id) up) in
      if not (Quorum.read_quorum_met quorum up_weight) then true
      else begin
        let ok = ref true in
        for block = 0 to n_blocks t - 1 do
          let global_max =
            Array.fold_left
              (fun acc (s : Runtime.site) ->
                Int.max acc (Durable.effective_version s.durable block))
              0 sites
          in
          let held_up =
            List.exists
              (fun (s : Runtime.site) -> Durable.effective_version s.durable block = global_max)
              up
          in
          if not held_up then ok := false
        done;
        !ok
      end
