(** Time-weighted availability measurement.

    The availability A of Section 4 is the limiting fraction of time the
    replicated block is in an operating state; this monitor integrates the
    indicator of that state over virtual time. *)

type t

val create : Sim.Engine.t -> initially:bool -> t
(** Starts observing at the engine's current time. *)

val record : t -> bool -> unit
(** Note the current availability at the engine's current time; redundant
    notes (same value) are fine. *)

val availability : t -> float
(** Fraction of elapsed virtual time the system was available; [nan] before
    any time has passed. *)

val time_observed : t -> float
val transitions : t -> int
(** Number of availability changes (up→down plus down→up). *)

val outages : t -> int
(** Number of up→down transitions observed. *)

val current_outage : t -> float option
(** Elapsed duration of the outage in progress at the engine's current
    time, or [None] when the system is up.  An outage still in progress at
    the end of a measurement run is {e truncated}: it is absent from
    {!outage_durations} and would silently bias MTTR low if ignored —
    report it alongside. *)

val outage_durations : t -> Util.Stats.t
(** Durations of completed outages (an outage still in progress is not
    included): the replicated system's observed repair-time distribution,
    whose mean is its MTTR. *)

val mean_time_to_repair : t -> float
(** Mean completed-outage duration; [nan] before the first completed
    outage. *)
