type site_info = {
  origin : int;
  state : Types.site_state;
  versions : Blockdev.Version_vector.t;
  was_available : Types.Int_set.t;
}

type t =
  | Vote_request of { rid : int; block : Blockdev.Block.id; purpose : Net.Message.operation }
  | Vote_reply of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      weight : int;
      group_size : int;
    }
  | Block_update of {
      rid : int option;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
      carried_w : Types.Int_set.t;
    }
  | Write_ack of { rid : int; block : Blockdev.Block.id }
  | Block_request of { rid : int; block : Blockdev.Block.id }
  | Block_transfer of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
    }
  | Recovery_probe of { rid : int; info : site_info }
  | Recovery_reply of { rid : int; info : site_info }
  | Vv_send of { rid : int; versions : Blockdev.Version_vector.t; w_of_sender : Types.Int_set.t }
  | Vv_reply of {
      rid : int;
      versions : Blockdev.Version_vector.t;
      updates : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      w_of_source : Types.Int_set.t;
    }
  | Group_fix of { block : Blockdev.Block.id; version : int; group : Types.Int_set.t }
  | Batch_vote_request of {
      rid : int;
      blocks : Blockdev.Block.id list;
      purpose : Net.Message.operation;
    }
  | Batch_vote_reply of {
      rid : int;
      votes : (Blockdev.Block.id * int) list;
      weight : int;
      group_size : int;
    }
  | Batch_update of {
      rid : int option;
      writes : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      carried_w : Types.Int_set.t;
    }
  | Batch_ack of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_request of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_transfer of { rid : int; payloads : (Blockdev.Block.id * int * Blockdev.Block.t) list }

let category = function
  | Vote_request _ -> Net.Message.Vote_request
  | Vote_reply _ -> Net.Message.Vote_reply
  | Block_update _ -> Net.Message.Block_update
  | Write_ack _ -> Net.Message.Write_ack
  | Block_request _ -> Net.Message.Block_request
  | Block_transfer _ -> Net.Message.Block_transfer
  | Recovery_probe _ -> Net.Message.Recovery_probe
  | Recovery_reply _ -> Net.Message.Recovery_reply
  | Vv_send _ -> Net.Message.Version_vector_send
  | Vv_reply _ -> Net.Message.Version_vector_reply
  | Group_fix _ -> Net.Message.Was_available_update
  (* Batch messages are one transmission of the same category as their
     single-block counterpart; only their size grows with the batch. *)
  | Batch_vote_request _ -> Net.Message.Vote_request
  | Batch_vote_reply _ -> Net.Message.Vote_reply
  | Batch_update _ -> Net.Message.Block_update
  | Batch_ack _ -> Net.Message.Write_ack
  | Batch_request _ -> Net.Message.Block_request
  | Batch_transfer _ -> Net.Message.Block_transfer

(* Byte-size model: 32-byte header on everything, 4 bytes per integer
   field, full block payloads, 4 bytes per set member / vector entry. *)
let header = 32
let int_field = 4
let set_size s = int_field * Types.Int_set.cardinal s
let vv_size v = int_field * Blockdev.Version_vector.length v

let info_size (info : site_info) =
  int_field + int_field + vv_size info.versions + set_size info.was_available

let size = function
  | Vote_request _ -> header + (3 * int_field)
  | Vote_reply _ -> header + (5 * int_field)
  | Block_update { carried_w; _ } -> header + (3 * int_field) + Blockdev.Block.size + set_size carried_w
  | Write_ack _ -> header + (2 * int_field)
  | Block_request _ -> header + (2 * int_field)
  | Block_transfer _ -> header + (3 * int_field) + Blockdev.Block.size
  | Recovery_probe { info; _ } | Recovery_reply { info; _ } -> header + int_field + info_size info
  | Vv_send { versions; w_of_sender; _ } -> header + int_field + vv_size versions + set_size w_of_sender
  | Vv_reply { versions; updates; w_of_source; _ } ->
      header + int_field + vv_size versions + set_size w_of_source
      + List.fold_left
          (fun acc (_, _, _) -> acc + (2 * int_field) + Blockdev.Block.size)
          0 updates
  | Group_fix { group; _ } -> header + (2 * int_field) + set_size group
  | Batch_vote_request { blocks; _ } -> header + (2 * int_field) + (int_field * List.length blocks)
  | Batch_vote_reply { votes; _ } -> header + (3 * int_field) + (2 * int_field * List.length votes)
  | Batch_update { writes; carried_w; _ } ->
      header + int_field + set_size carried_w
      + List.fold_left (fun acc _ -> acc + (2 * int_field) + Blockdev.Block.size) 0 writes
  | Batch_ack { blocks; _ } | Batch_request { blocks; _ } ->
      header + int_field + (int_field * List.length blocks)
  | Batch_transfer { payloads; _ } ->
      header + int_field
      + List.fold_left (fun acc _ -> acc + (2 * int_field) + Blockdev.Block.size) 0 payloads

let rid = function
  | Vote_request { rid; _ }
  | Vote_reply { rid; _ }
  | Write_ack { rid; _ }
  | Block_request { rid; _ }
  | Block_transfer { rid; _ }
  | Recovery_probe { rid; _ }
  | Recovery_reply { rid; _ }
  | Vv_send { rid; _ }
  | Vv_reply { rid; _ }
  | Batch_vote_request { rid; _ }
  | Batch_vote_reply { rid; _ }
  | Batch_ack { rid; _ }
  | Batch_request { rid; _ }
  | Batch_transfer { rid; _ } ->
      Some rid
  | Block_update { rid; _ } | Batch_update { rid; _ } -> rid
  | Group_fix _ -> None

let describe = function
  | Vote_request { rid; block; purpose } ->
      Printf.sprintf "vote-request(rid=%d, block=%d, %s)" rid block
        (Net.Message.operation_to_string purpose)
  | Vote_reply { rid; block; version; weight; group_size } ->
      Printf.sprintf "vote-reply(rid=%d, block=%d, v=%d, w=%d, g=%d)" rid block version weight
        group_size
  | Block_update { block; version; _ } -> Printf.sprintf "block-update(block=%d, v=%d)" block version
  | Write_ack { rid; block } -> Printf.sprintf "write-ack(rid=%d, block=%d)" rid block
  | Block_request { rid; block } -> Printf.sprintf "block-request(rid=%d, block=%d)" rid block
  | Block_transfer { rid; block; version; _ } ->
      Printf.sprintf "block-transfer(rid=%d, block=%d, v=%d)" rid block version
  | Recovery_probe { rid; info } -> Printf.sprintf "recovery-probe(rid=%d, from=%d)" rid info.origin
  | Recovery_reply { rid; info } -> Printf.sprintf "recovery-reply(rid=%d, from=%d)" rid info.origin
  | Vv_send { rid; _ } -> Printf.sprintf "vv-send(rid=%d)" rid
  | Vv_reply { rid; updates; _ } -> Printf.sprintf "vv-reply(rid=%d, %d updates)" rid (List.length updates)
  | Group_fix { block; version; group } ->
      Printf.sprintf "group-fix(block=%d, v=%d, |g|=%d)" block version (Types.Int_set.cardinal group)
  | Batch_vote_request { rid; blocks; purpose } ->
      Printf.sprintf "batch-vote-request(rid=%d, %d blocks, %s)" rid (List.length blocks)
        (Net.Message.operation_to_string purpose)
  | Batch_vote_reply { rid; votes; weight; _ } ->
      Printf.sprintf "batch-vote-reply(rid=%d, %d votes, w=%d)" rid (List.length votes) weight
  | Batch_update { writes; _ } -> Printf.sprintf "batch-update(%d writes)" (List.length writes)
  | Batch_ack { rid; blocks } -> Printf.sprintf "batch-ack(rid=%d, %d blocks)" rid (List.length blocks)
  | Batch_request { rid; blocks } ->
      Printf.sprintf "batch-request(rid=%d, %d blocks)" rid (List.length blocks)
  | Batch_transfer { rid; payloads } ->
      Printf.sprintf "batch-transfer(rid=%d, %d blocks)" rid (List.length payloads)
