type site_info = {
  origin : int;
  state : Types.site_state;
  versions : Blockdev.Version_vector.t;
  was_available : Types.Int_set.t;
}

type t =
  | Vote_request of { rid : int; block : Blockdev.Block.id; purpose : Net.Message.operation }
  | Vote_reply of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      weight : int;
      group_size : int;
    }
  | Block_update of {
      rid : int option;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
      carried_w : Types.Int_set.t;
    }
  | Write_ack of { rid : int; block : Blockdev.Block.id }
  | Block_request of { rid : int; block : Blockdev.Block.id }
  | Block_transfer of {
      rid : int;
      block : Blockdev.Block.id;
      version : int;
      data : Blockdev.Block.t;
    }
  | Recovery_probe of { rid : int; info : site_info }
  | Recovery_reply of { rid : int; info : site_info }
  | Vv_send of { rid : int; versions : Blockdev.Version_vector.t; w_of_sender : Types.Int_set.t }
  | Vv_reply of {
      rid : int;
      versions : Blockdev.Version_vector.t;
      updates : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      w_of_source : Types.Int_set.t;
    }
  | Group_fix of { block : Blockdev.Block.id; version : int; group : Types.Int_set.t }
  | Batch_vote_request of {
      rid : int;
      blocks : Blockdev.Block.id list;
      purpose : Net.Message.operation;
    }
  | Batch_vote_reply of {
      rid : int;
      votes : (Blockdev.Block.id * int) list;
      weight : int;
      group_size : int;
    }
  | Batch_update of {
      rid : int option;
      writes : (Blockdev.Block.id * int * Blockdev.Block.t) list;
      carried_w : Types.Int_set.t;
    }
  | Batch_ack of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_request of { rid : int; blocks : Blockdev.Block.id list }
  | Batch_transfer of { rid : int; payloads : (Blockdev.Block.id * int * Blockdev.Block.t) list }

let category = function
  | Vote_request _ -> Net.Message.Vote_request
  | Vote_reply _ -> Net.Message.Vote_reply
  | Block_update _ -> Net.Message.Block_update
  | Write_ack _ -> Net.Message.Write_ack
  | Block_request _ -> Net.Message.Block_request
  | Block_transfer _ -> Net.Message.Block_transfer
  | Recovery_probe _ -> Net.Message.Recovery_probe
  | Recovery_reply _ -> Net.Message.Recovery_reply
  | Vv_send _ -> Net.Message.Version_vector_send
  | Vv_reply _ -> Net.Message.Version_vector_reply
  | Group_fix _ -> Net.Message.Was_available_update
  (* Batch messages are one transmission of the same category as their
     single-block counterpart; only their size grows with the batch. *)
  | Batch_vote_request _ -> Net.Message.Vote_request
  | Batch_vote_reply _ -> Net.Message.Vote_reply
  | Batch_update _ -> Net.Message.Block_update
  | Batch_ack _ -> Net.Message.Write_ack
  | Batch_request _ -> Net.Message.Block_request
  | Batch_transfer _ -> Net.Message.Block_transfer

(* Legacy byte-size model: 32-byte header on everything, 4 bytes per
   integer field, full block payloads, 4 bytes per set member / vector
   entry.  Kept only as a cross-check against the measured encoded
   size (see [size] below and the tolerance test in
   test_traffic_counts); traffic accounting charges measured frames. *)
let header = 32
let int_field = 4
let set_size s = int_field * Types.Int_set.cardinal s
let vv_size v = int_field * Blockdev.Version_vector.length v

let info_size (info : site_info) =
  int_field + int_field + vv_size info.versions + set_size info.was_available

let model_size = function
  | Vote_request _ -> header + (3 * int_field)
  | Vote_reply _ -> header + (5 * int_field)
  | Block_update { carried_w; _ } -> header + (3 * int_field) + Blockdev.Block.size + set_size carried_w
  | Write_ack _ -> header + (2 * int_field)
  | Block_request _ -> header + (2 * int_field)
  | Block_transfer _ -> header + (3 * int_field) + Blockdev.Block.size
  | Recovery_probe { info; _ } | Recovery_reply { info; _ } -> header + int_field + info_size info
  | Vv_send { versions; w_of_sender; _ } -> header + int_field + vv_size versions + set_size w_of_sender
  | Vv_reply { versions; updates; w_of_source; _ } ->
      header + int_field + vv_size versions + set_size w_of_source
      + List.fold_left
          (fun acc (_, _, _) -> acc + (2 * int_field) + Blockdev.Block.size)
          0 updates
  | Group_fix { group; _ } -> header + (2 * int_field) + set_size group
  | Batch_vote_request { blocks; _ } -> header + (2 * int_field) + (int_field * List.length blocks)
  | Batch_vote_reply { votes; _ } -> header + (3 * int_field) + (2 * int_field * List.length votes)
  | Batch_update { writes; carried_w; _ } ->
      header + int_field + set_size carried_w
      + List.fold_left (fun acc _ -> acc + (2 * int_field) + Blockdev.Block.size) 0 writes
  | Batch_ack { blocks; _ } | Batch_request { blocks; _ } ->
      header + int_field + (int_field * List.length blocks)
  | Batch_transfer { payloads; _ } ->
      header + int_field
      + List.fold_left (fun acc _ -> acc + (2 * int_field) + Blockdev.Block.size) 0 payloads

(* Binary codec.

   Every message is one {!Codec.Frame} (9-byte header: magic, payload
   length, CRC-32) whose payload starts with a varint constructor tag
   followed by the fields in declaration order.  Integers are varints,
   enums single bytes, sets/vectors/lists length-prefixed, block
   payloads raw [Block.size] bytes.  The encoder arms below serve both
   [size] (counting pass — measured, allocation-free, domain-safe) and
   [encode] (one exactly-sized allocation); [decode] validates frame
   length and CRC before any payload decoding and returns typed errors,
   never raising. *)

module B = Codec.Buf

module Tag = struct
  (* One constant constructor per [Wire.t] constructor.  [tag_of] is
     lint-checked (charging rule) to map every wire constructor to a
     tag exactly once, and the decoder's dispatch over [Tag.t] is
     wire-exhaustiveness-checked like any other wire dispatch — so a
     new message cannot silently skip the codec. *)
  type t =
    | Vote_request
    | Vote_reply
    | Block_update
    | Write_ack
    | Block_request
    | Block_transfer
    | Recovery_probe
    | Recovery_reply
    | Vv_send
    | Vv_reply
    | Group_fix
    | Batch_vote_request
    | Batch_vote_reply
    | Batch_update
    | Batch_ack
    | Batch_request
    | Batch_transfer

  let to_int = function
    | Vote_request -> 1
    | Vote_reply -> 2
    | Block_update -> 3
    | Write_ack -> 4
    | Block_request -> 5
    | Block_transfer -> 6
    | Recovery_probe -> 7
    | Recovery_reply -> 8
    | Vv_send -> 9
    | Vv_reply -> 10
    | Group_fix -> 11
    | Batch_vote_request -> 12
    | Batch_vote_reply -> 13
    | Batch_update -> 14
    | Batch_ack -> 15
    | Batch_request -> 16
    | Batch_transfer -> 17

  let of_int = function
    | 1 -> Some Vote_request
    | 2 -> Some Vote_reply
    | 3 -> Some Block_update
    | 4 -> Some Write_ack
    | 5 -> Some Block_request
    | 6 -> Some Block_transfer
    | 7 -> Some Recovery_probe
    | 8 -> Some Recovery_reply
    | 9 -> Some Vv_send
    | 10 -> Some Vv_reply
    | 11 -> Some Group_fix
    | 12 -> Some Batch_vote_request
    | 13 -> Some Batch_vote_reply
    | 14 -> Some Batch_update
    | 15 -> Some Batch_ack
    | 16 -> Some Batch_request
    | 17 -> Some Batch_transfer
    | _ -> None
end

let tag_of = function
  | Vote_request _ -> Tag.Vote_request
  | Vote_reply _ -> Tag.Vote_reply
  | Block_update _ -> Tag.Block_update
  | Write_ack _ -> Tag.Write_ack
  | Block_request _ -> Tag.Block_request
  | Block_transfer _ -> Tag.Block_transfer
  | Recovery_probe _ -> Tag.Recovery_probe
  | Recovery_reply _ -> Tag.Recovery_reply
  | Vv_send _ -> Tag.Vv_send
  | Vv_reply _ -> Tag.Vv_reply
  | Group_fix _ -> Tag.Group_fix
  | Batch_vote_request _ -> Tag.Batch_vote_request
  | Batch_vote_reply _ -> Tag.Batch_vote_reply
  | Batch_update _ -> Tag.Batch_update
  | Batch_ack _ -> Tag.Batch_ack
  | Batch_request _ -> Tag.Batch_request
  | Batch_transfer _ -> Tag.Batch_transfer

(* Field emitters, shared by the counting and writing passes. *)

let put_operation w (op : Net.Message.operation) =
  B.u8 w
    (match op with
    | Net.Message.Read -> 0
    | Net.Message.Write -> 1
    | Net.Message.Recovery -> 2
    | Net.Message.Repair -> 3)

let put_state w (s : Types.site_state) =
  B.u8 w (match s with Types.Failed -> 0 | Types.Comatose -> 1 | Types.Available -> 2)

(* [None] is 0; [Some r] is [r + 1] — rids are non-negative. *)
let put_rid_opt w = function None -> B.varint w 0 | Some r -> B.varint w (r + 1)

let put_set w s =
  B.varint w (Types.Int_set.cardinal s);
  Types.Int_set.iter (fun x -> B.varint w x) s

let put_vv w v =
  let n = Blockdev.Version_vector.length v in
  B.varint w n;
  for i = 0 to n - 1 do
    B.varint w (Blockdev.Version_vector.get v i)
  done

(* [Block.to_string] is the identity on the immutable representation —
   no copy on the encode hot path. *)
let put_block w (data : Blockdev.Block.t) = B.raw_string w (Blockdev.Block.to_string data)

let put_info w (info : site_info) =
  B.varint w info.origin;
  put_state w info.state;
  put_vv w info.versions;
  put_set w info.was_available

let put_blocks w blocks =
  B.varint w (List.length blocks);
  List.iter (fun b -> B.varint w b) blocks

let put_votes w votes =
  B.varint w (List.length votes);
  List.iter
    (fun (b, v) ->
      B.varint w b;
      B.varint w v)
    votes

let put_writes w writes =
  B.varint w (List.length writes);
  List.iter
    (fun (b, v, data) ->
      B.varint w b;
      B.varint w v;
      put_block w data)
    writes

(* The encoder dispatch: exactly one arm per constructor, no catch-all
   (enforced by warn-error 8 and blockrep-lint's wire-exhaustive rule). *)
let encode_fields w = function
  | Vote_request { rid; block; purpose } ->
      B.varint w rid;
      B.varint w block;
      put_operation w purpose
  | Vote_reply { rid; block; version; weight; group_size } ->
      B.varint w rid;
      B.varint w block;
      B.varint w version;
      B.varint w weight;
      B.varint w group_size
  | Block_update { rid; block; version; data; carried_w } ->
      put_rid_opt w rid;
      B.varint w block;
      B.varint w version;
      put_block w data;
      put_set w carried_w
  | Write_ack { rid; block } ->
      B.varint w rid;
      B.varint w block
  | Block_request { rid; block } ->
      B.varint w rid;
      B.varint w block
  | Block_transfer { rid; block; version; data } ->
      B.varint w rid;
      B.varint w block;
      B.varint w version;
      put_block w data
  | Recovery_probe { rid; info } ->
      B.varint w rid;
      put_info w info
  | Recovery_reply { rid; info } ->
      B.varint w rid;
      put_info w info
  | Vv_send { rid; versions; w_of_sender } ->
      B.varint w rid;
      put_vv w versions;
      put_set w w_of_sender
  | Vv_reply { rid; versions; updates; w_of_source } ->
      B.varint w rid;
      put_vv w versions;
      put_writes w updates;
      put_set w w_of_source
  | Group_fix { block; version; group } ->
      B.varint w block;
      B.varint w version;
      put_set w group
  | Batch_vote_request { rid; blocks; purpose } ->
      B.varint w rid;
      put_blocks w blocks;
      put_operation w purpose
  | Batch_vote_reply { rid; votes; weight; group_size } ->
      B.varint w rid;
      put_votes w votes;
      B.varint w weight;
      B.varint w group_size
  | Batch_update { rid; writes; carried_w } ->
      put_rid_opt w rid;
      put_writes w writes;
      put_set w carried_w
  | Batch_ack { rid; blocks } ->
      B.varint w rid;
      put_blocks w blocks
  | Batch_request { rid; blocks } ->
      B.varint w rid;
      put_blocks w blocks
  | Batch_transfer { rid; payloads } ->
      B.varint w rid;
      put_writes w payloads

let encode_payload w m =
  B.varint w (Tag.to_int (tag_of m));
  encode_fields w m

let size m = Codec.Frame.encoded_size ~payload:(fun w -> encode_payload w m)
let encode m = Codec.Frame.encode ~payload:(fun w -> encode_payload w m)

(* Field readers.  These raise [B.Short]/[B.Bad] internally; [decode]
   catches both at the frame boundary and returns a typed error. *)

let get_operation r : Net.Message.operation =
  match B.r_u8 r with
  | 0 -> Net.Message.Read
  | 1 -> Net.Message.Write
  | 2 -> Net.Message.Recovery
  | 3 -> Net.Message.Repair
  | n -> raise (B.Bad (Printf.sprintf "bad operation code %d" n))

let get_state r : Types.site_state =
  match B.r_u8 r with
  | 0 -> Types.Failed
  | 1 -> Types.Comatose
  | 2 -> Types.Available
  | n -> raise (B.Bad (Printf.sprintf "bad site-state code %d" n))

let get_rid_opt r =
  match B.r_varint r with 0 -> None | n -> Some (n - 1)

(* Length sanity: every encoded element is at least one byte, so a
   declared length beyond the remaining payload is malformed — checked
   before allocating, to keep corrupt frames from forcing huge lists. *)
let get_len r =
  let n = B.r_varint r in
  if n < 0 || n > B.remaining r then raise (B.Bad "list length exceeds payload");
  n

let get_list r f =
  let n = get_len r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let get_set r =
  let n = get_len r in
  let rec go k acc = if k = 0 then acc else go (k - 1) (Types.Int_set.add (B.r_varint r) acc) in
  go n Types.Int_set.empty

let get_vv r =
  let n = get_len r in
  let v = Blockdev.Version_vector.create n in
  for i = 0 to n - 1 do
    Blockdev.Version_vector.set v i (B.r_varint r)
  done;
  v

let get_block r = Blockdev.Block.of_string (B.r_raw_string r Blockdev.Block.size)

let get_info r =
  let origin = B.r_varint r in
  let state = get_state r in
  let versions = get_vv r in
  let was_available = get_set r in
  { origin; state; versions; was_available }

let get_blocks r = get_list r B.r_varint

let get_votes r =
  get_list r (fun r ->
      let b = B.r_varint r in
      let v = B.r_varint r in
      (b, v))

let get_writes r =
  get_list r (fun r ->
      let b = B.r_varint r in
      let v = B.r_varint r in
      let data = get_block r in
      (b, v, data))

(* The decoder dispatch: exactly one arm per tag, no catch-all — the
   mirror image of [encode_fields], lint-checked the same way. *)
let decode_fields r (tag : Tag.t) =
  match tag with
  | Tag.Vote_request ->
      let rid = B.r_varint r in
      let block = B.r_varint r in
      let purpose = get_operation r in
      Vote_request { rid; block; purpose }
  | Tag.Vote_reply ->
      let rid = B.r_varint r in
      let block = B.r_varint r in
      let version = B.r_varint r in
      let weight = B.r_varint r in
      let group_size = B.r_varint r in
      Vote_reply { rid; block; version; weight; group_size }
  | Tag.Block_update ->
      let rid = get_rid_opt r in
      let block = B.r_varint r in
      let version = B.r_varint r in
      let data = get_block r in
      let carried_w = get_set r in
      Block_update { rid; block; version; data; carried_w }
  | Tag.Write_ack ->
      let rid = B.r_varint r in
      let block = B.r_varint r in
      Write_ack { rid; block }
  | Tag.Block_request ->
      let rid = B.r_varint r in
      let block = B.r_varint r in
      Block_request { rid; block }
  | Tag.Block_transfer ->
      let rid = B.r_varint r in
      let block = B.r_varint r in
      let version = B.r_varint r in
      let data = get_block r in
      Block_transfer { rid; block; version; data }
  | Tag.Recovery_probe ->
      let rid = B.r_varint r in
      let info = get_info r in
      Recovery_probe { rid; info }
  | Tag.Recovery_reply ->
      let rid = B.r_varint r in
      let info = get_info r in
      Recovery_reply { rid; info }
  | Tag.Vv_send ->
      let rid = B.r_varint r in
      let versions = get_vv r in
      let w_of_sender = get_set r in
      Vv_send { rid; versions; w_of_sender }
  | Tag.Vv_reply ->
      let rid = B.r_varint r in
      let versions = get_vv r in
      let updates = get_writes r in
      let w_of_source = get_set r in
      Vv_reply { rid; versions; updates; w_of_source }
  | Tag.Group_fix ->
      let block = B.r_varint r in
      let version = B.r_varint r in
      let group = get_set r in
      Group_fix { block; version; group }
  | Tag.Batch_vote_request ->
      let rid = B.r_varint r in
      let blocks = get_blocks r in
      let purpose = get_operation r in
      Batch_vote_request { rid; blocks; purpose }
  | Tag.Batch_vote_reply ->
      let rid = B.r_varint r in
      let votes = get_votes r in
      let weight = B.r_varint r in
      let group_size = B.r_varint r in
      Batch_vote_reply { rid; votes; weight; group_size }
  | Tag.Batch_update ->
      let rid = get_rid_opt r in
      let writes = get_writes r in
      let carried_w = get_set r in
      Batch_update { rid; writes; carried_w }
  | Tag.Batch_ack ->
      let rid = B.r_varint r in
      let blocks = get_blocks r in
      Batch_ack { rid; blocks }
  | Tag.Batch_request ->
      let rid = B.r_varint r in
      let blocks = get_blocks r in
      Batch_request { rid; blocks }
  | Tag.Batch_transfer ->
      let rid = B.r_varint r in
      let payloads = get_writes r in
      Batch_transfer { rid; payloads }

type decode_error =
  | Frame_error of Codec.Frame.error
  | Bad_tag of int
  | Malformed of string

let decode_error_to_string = function
  | Frame_error e -> Format.asprintf "%a" Codec.Frame.pp_error e
  | Bad_tag n -> Printf.sprintf "unknown wire tag %d" n
  | Malformed msg -> Printf.sprintf "malformed payload: %s" msg

let decode buf =
  match Codec.Frame.decode buf with
  | Error e -> Error (Frame_error e)
  | Ok r -> (
      match
        let code = B.r_varint r in
        match Tag.of_int code with
        | None -> Error (Bad_tag code)
        | Some tag ->
            let m = decode_fields r tag in
            if B.at_end r then Ok m else Error (Malformed "trailing payload bytes")
      with
      | result -> result
      | exception B.Short -> Error (Malformed "payload truncated")
      | exception B.Bad msg -> Error (Malformed msg))

let reject_of_error = function
  | Frame_error (Codec.Frame.Truncated _) -> Net.Message.Reject_truncated
  | Frame_error (Codec.Frame.Bad_magic _) -> Net.Message.Reject_bad_magic
  | Frame_error (Codec.Frame.Trailing _) -> Net.Message.Reject_trailing
  | Frame_error (Codec.Frame.Crc_mismatch _) -> Net.Message.Reject_crc
  | Bad_tag _ -> Net.Message.Reject_bad_tag
  | Malformed _ -> Net.Message.Reject_malformed

let decode_frame buf = Result.map_error reject_of_error (decode buf)

let rid = function
  | Vote_request { rid; _ }
  | Vote_reply { rid; _ }
  | Write_ack { rid; _ }
  | Block_request { rid; _ }
  | Block_transfer { rid; _ }
  | Recovery_probe { rid; _ }
  | Recovery_reply { rid; _ }
  | Vv_send { rid; _ }
  | Vv_reply { rid; _ }
  | Batch_vote_request { rid; _ }
  | Batch_vote_reply { rid; _ }
  | Batch_ack { rid; _ }
  | Batch_request { rid; _ }
  | Batch_transfer { rid; _ } ->
      Some rid
  | Block_update { rid; _ } | Batch_update { rid; _ } -> rid
  | Group_fix _ -> None

let describe = function
  | Vote_request { rid; block; purpose } ->
      Printf.sprintf "vote-request(rid=%d, block=%d, %s)" rid block
        (Net.Message.operation_to_string purpose)
  | Vote_reply { rid; block; version; weight; group_size } ->
      Printf.sprintf "vote-reply(rid=%d, block=%d, v=%d, w=%d, g=%d)" rid block version weight
        group_size
  | Block_update { block; version; _ } -> Printf.sprintf "block-update(block=%d, v=%d)" block version
  | Write_ack { rid; block } -> Printf.sprintf "write-ack(rid=%d, block=%d)" rid block
  | Block_request { rid; block } -> Printf.sprintf "block-request(rid=%d, block=%d)" rid block
  | Block_transfer { rid; block; version; _ } ->
      Printf.sprintf "block-transfer(rid=%d, block=%d, v=%d)" rid block version
  | Recovery_probe { rid; info } -> Printf.sprintf "recovery-probe(rid=%d, from=%d)" rid info.origin
  | Recovery_reply { rid; info } -> Printf.sprintf "recovery-reply(rid=%d, from=%d)" rid info.origin
  | Vv_send { rid; _ } -> Printf.sprintf "vv-send(rid=%d)" rid
  | Vv_reply { rid; updates; _ } -> Printf.sprintf "vv-reply(rid=%d, %d updates)" rid (List.length updates)
  | Group_fix { block; version; group } ->
      Printf.sprintf "group-fix(block=%d, v=%d, |g|=%d)" block version (Types.Int_set.cardinal group)
  | Batch_vote_request { rid; blocks; purpose } ->
      Printf.sprintf "batch-vote-request(rid=%d, %d blocks, %s)" rid (List.length blocks)
        (Net.Message.operation_to_string purpose)
  | Batch_vote_reply { rid; votes; weight; _ } ->
      Printf.sprintf "batch-vote-reply(rid=%d, %d votes, w=%d)" rid (List.length votes) weight
  | Batch_update { writes; _ } -> Printf.sprintf "batch-update(%d writes)" (List.length writes)
  | Batch_ack { rid; blocks } -> Printf.sprintf "batch-ack(rid=%d, %d blocks)" rid (List.length blocks)
  | Batch_request { rid; blocks } ->
      Printf.sprintf "batch-request(rid=%d, %d blocks)" rid (List.length blocks)
  | Batch_transfer { rid; payloads } ->
      Printf.sprintf "batch-transfer(rid=%d, %d blocks)" rid (List.length payloads)
