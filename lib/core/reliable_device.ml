type t = { cluster : Cluster.t; stub : Driver_stub.t; mutable last_error : Types.failure_reason option }

let create ?home ?policy ?settle cluster =
  { cluster; stub = Driver_stub.create ?home ?policy ?settle cluster; last_error = None }

let of_config ?policy ?settle config = create ?policy ?settle (Cluster.create config)

let cluster t = t.cluster
let stub t = t.stub
let capacity t = Cluster.n_blocks t.cluster

let read_block t k =
  if k < 0 || k >= capacity t then None
  else
    match Driver_stub.read_block t.stub k with
    | Ok (data, _version) ->
        t.last_error <- None;
        Some data
    | Error reason ->
        t.last_error <- Some reason;
        None

let write_block t k data =
  if k < 0 || k >= capacity t then false
  else
    match Driver_stub.write_block t.stub k data with
    | Ok _version ->
        t.last_error <- None;
        true
    | Error reason ->
        t.last_error <- Some reason;
        false

(* Batched forms, for the write-back cache: one stub rotation serves the
   whole group.  Mirrors the single-block convention — out-of-range ids
   answer None/false without touching the cluster. *)
let read_blocks t ks =
  if ks = [] || List.exists (fun k -> k < 0 || k >= capacity t) ks then None
  else
    match Driver_stub.read_blocks t.stub ks with
    | Ok results ->
        t.last_error <- None;
        Some (List.map fst results)
    | Error reason ->
        t.last_error <- Some reason;
        None

let write_blocks t writes =
  if writes = [] || List.exists (fun (k, _) -> k < 0 || k >= capacity t) writes then false
  else
    match Driver_stub.write_blocks t.stub writes with
    | Ok _versions ->
        t.last_error <- None;
        true
    | Error reason ->
        t.last_error <- Some reason;
        false

let last_error t = t.last_error

type degradation = {
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  faults_injected : int;
  last_errors : (float * string) list;
}

let degradation t =
  let s = Driver_stub.retry_stats t.stub in
  {
    requests = Driver_stub.requests t.stub;
    site_attempts = Driver_stub.site_attempts t.stub;
    failovers = Driver_stub.failovers t.stub;
    retries = Retry.retries s;
    succeeded = Retry.succeeded s;
    recovered = Retry.recovered s;
    timeouts = Retry.timeouts s;
    gave_up = Retry.gave_up s;
    rejected = Retry.rejected s;
    faults_injected = (match Cluster.faults t.cluster with None -> 0 | Some f -> Net.Faults.total_injected f);
    last_errors = Retry.last_errors s;
  }

let degradation_conserved d = d.requests = d.succeeded + d.timeouts + d.gave_up + d.rejected

let pp_degradation ppf d =
  Format.fprintf ppf
    "@[<v>degradation: %d requests (%d ok), %d site attempts, %d failovers@,\
     %d retries (%d recovered), %d deadline timeouts, %d gave up, %d rejected, %d faults injected"
    d.requests d.succeeded d.site_attempts d.failovers d.retries d.recovered d.timeouts d.gave_up
    d.rejected d.faults_injected;
  List.iter (fun (at, msg) -> Format.fprintf ppf "@,  t=%-10.3f %s" at msg) (List.rev d.last_errors);
  Format.fprintf ppf "@]"
