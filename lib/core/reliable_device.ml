type t = {
  cluster : Cluster.t;
  stub : Driver_stub.t;
  admission : int option;
  mutable in_flight : int;
  mutable shed : int;
  mutable async_ops : int;
  mutable async_ok : int;
  mutable async_timeouts : int;
  mutable async_rejected : int;
  mutable async_failed : int;
  mutable last_error : Types.failure_reason option;
}

let create ?home ?policy ?settle ?rng ?admission cluster =
  let admission =
    match admission with
    | Some _ as a -> a
    | None -> (Cluster.config cluster).Config.robustness.Robustness.admission
  in
  (match admission with
  | Some n when n < 1 -> invalid_arg "Reliable_device.create: admission limit must be at least 1"
  | Some _ | None -> ());
  {
    cluster;
    stub = Driver_stub.create ?home ?policy ?settle ?rng cluster;
    admission;
    in_flight = 0;
    shed = 0;
    async_ops = 0;
    async_ok = 0;
    async_timeouts = 0;
    async_rejected = 0;
    async_failed = 0;
    last_error = None;
  }

let of_config ?policy ?settle ?rng ?admission config =
  create ?policy ?settle ?rng ?admission (Cluster.create config)

let cluster t = t.cluster
let stub t = t.stub
let capacity t = Cluster.n_blocks t.cluster
let in_flight t = t.in_flight

let read_block t k =
  if k < 0 || k >= capacity t then None
  else
    match Driver_stub.read_block t.stub k with
    | Ok (data, _version) ->
        t.last_error <- None;
        Some data
    | Error reason ->
        t.last_error <- Some reason;
        None

let write_block t k data =
  if k < 0 || k >= capacity t then false
  else
    match Driver_stub.write_block t.stub k data with
    | Ok _version ->
        t.last_error <- None;
        true
    | Error reason ->
        t.last_error <- Some reason;
        false

(* Batched forms, for the write-back cache: one stub rotation serves the
   whole group.  Mirrors the single-block convention — out-of-range ids
   answer None/false without touching the cluster. *)
let read_blocks t ks =
  if ks = [] || List.exists (fun k -> k < 0 || k >= capacity t) ks then None
  else
    match Driver_stub.read_blocks t.stub ks with
    | Ok results ->
        t.last_error <- None;
        Some (List.map fst results)
    | Error reason ->
        t.last_error <- Some reason;
        None

let write_blocks t writes =
  if writes = [] || List.exists (fun (k, _) -> k < 0 || k >= capacity t) writes then false
  else
    match Driver_stub.write_blocks t.stub writes with
    | Ok _versions ->
        t.last_error <- None;
        true
    | Error reason ->
        t.last_error <- Some reason;
        false

let last_error t = t.last_error

(* ------------------------------------------------------------------ *)
(* Asynchronous operations with admission control                      *)
(* ------------------------------------------------------------------ *)

let admit t = match t.admission with Some limit -> t.in_flight < limit | None -> true

let op_deadline t =
  Option.map
    (fun b -> Sim.Engine.now (Cluster.engine t.cluster) +. b)
    (Driver_stub.deadline_budget t.stub)

(* Classify each settled async operation into exactly one degradation
   bucket, so the conservation identity covers the open-loop path too:
   cluster-level [Overloaded] (full entry queue downstream) counts as
   rejected, [Timed_out] as a deadline timeout, any other error as given
   up (the async path carries no retry loop). *)
let finish_async t callback result =
  t.in_flight <- t.in_flight - 1;
  (match result with
  | Ok _ ->
      t.async_ok <- t.async_ok + 1;
      t.last_error <- None
  | Error reason ->
      (match reason with
      | Types.Overloaded -> t.async_rejected <- t.async_rejected + 1
      | Types.Timed_out -> t.async_timeouts <- t.async_timeouts + 1
      | _ -> t.async_failed <- t.async_failed + 1);
      t.last_error <- Some reason);
  callback result

let check_async t k name =
  if k < 0 || k >= capacity t then invalid_arg ("Reliable_device." ^ name ^ ": block out of range")

let submit_async t issue callback =
  if not (admit t) then begin
    t.shed <- t.shed + 1;
    t.last_error <- Some Types.Overloaded;
    callback (Error Types.Overloaded)
  end
  else begin
    t.async_ops <- t.async_ops + 1;
    t.in_flight <- t.in_flight + 1;
    issue (finish_async t callback)
  end

let read_block_async t k callback =
  check_async t k "read_block_async";
  submit_async t
    (fun finish ->
      Cluster.read t.cluster ?deadline:(op_deadline t) ~site:(Driver_stub.home t.stub) ~block:k
        finish)
    callback

let write_block_async t k data callback =
  check_async t k "write_block_async";
  submit_async t
    (fun finish ->
      Cluster.write t.cluster ?deadline:(op_deadline t) ~site:(Driver_stub.home t.stub) ~block:k
        data finish)
    callback

(* ------------------------------------------------------------------ *)
(* Degradation statistics                                              *)
(* ------------------------------------------------------------------ *)

type degradation = {
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  shed : int;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  messages_shed : int;
  faults_injected : int;
  frames_rejected : int;
  frames_quarantined : int;
  frames_retransmitted : int;
  quarantine_trips : int;
  corrupted_deliveries : int;
  corrupt_rejected : int;
  corrupt_quarantined : int;
  corrupt_survived : int;
  last_errors : (float * string) list;
}

let degradation t =
  let s = Driver_stub.retry_stats t.stub in
  {
    requests = Driver_stub.requests t.stub + t.async_ops + t.shed;
    site_attempts = Driver_stub.site_attempts t.stub + t.async_ops;
    failovers = Driver_stub.failovers t.stub;
    retries = Retry.retries s;
    succeeded = Retry.succeeded s + t.async_ok;
    recovered = Retry.recovered s;
    timeouts = Retry.timeouts s + t.async_timeouts;
    gave_up = Retry.gave_up s + t.async_failed;
    rejected = Retry.rejected s + t.async_rejected;
    shed = t.shed;
    hedged = Cluster.hedged t.cluster;
    hedge_wins = Cluster.hedge_wins t.cluster;
    breaker_trips = Cluster.breaker_trips t.cluster;
    messages_shed = Cluster.messages_shed t.cluster;
    faults_injected = (match Cluster.faults t.cluster with None -> 0 | Some f -> Net.Faults.total_injected f);
    frames_rejected = Cluster.frames_rejected t.cluster;
    frames_quarantined = Cluster.frames_quarantined t.cluster;
    frames_retransmitted = Cluster.frames_retransmitted t.cluster;
    quarantine_trips = Cluster.quarantine_trips t.cluster;
    corrupted_deliveries = Cluster.corrupted_deliveries t.cluster;
    corrupt_rejected = Cluster.corrupt_rejected t.cluster;
    corrupt_quarantined = Cluster.corrupt_quarantined t.cluster;
    corrupt_survived = Cluster.corrupt_survived t.cluster;
    last_errors = Retry.last_errors s;
  }

let degradation_conserved d =
  d.requests = d.succeeded + d.timeouts + d.gave_up + d.rejected + d.shed

let wire_conserved d =
  d.corrupted_deliveries = d.corrupt_rejected + d.corrupt_quarantined + d.corrupt_survived

let pp_degradation ppf d =
  Format.fprintf ppf
    "@[<v>degradation: %d requests (%d ok), %d site attempts, %d failovers@,\
     %d retries (%d recovered), %d deadline timeouts, %d gave up, %d rejected, %d shed@,\
     %d hedged (%d wins), %d breaker trips, %d messages shed, %d faults injected@,\
     wire: %d frames rejected, %d quarantined (%d trips), %d retransmitted; \
     %d corrupted = %d rejected + %d quarantined + %d survived"
    d.requests d.succeeded d.site_attempts d.failovers d.retries d.recovered d.timeouts d.gave_up
    d.rejected d.shed d.hedged d.hedge_wins d.breaker_trips d.messages_shed d.faults_injected
    d.frames_rejected d.frames_quarantined d.quarantine_trips d.frames_retransmitted
    d.corrupted_deliveries d.corrupt_rejected d.corrupt_quarantined d.corrupt_survived;
  List.iter (fun (at, msg) -> Format.fprintf ppf "@,  t=%-10.3f %s" at msg) (List.rev d.last_errors);
  Format.fprintf ppf "@]"
