(** The device-driver stub (Figures 1 and 2 of the paper).

    In the UNIX deployment the kernel's driver stub receives block requests
    from the file system and forwards them to a user-state server, which
    runs the consistency-control algorithms; under MACH the same role is
    played by IPC to a server task.  Here the stub forwards requests into
    the cluster at a {e home} server site, and — because the server need
    not live on any particular site — fails over to another operational
    site when the home site is down or cannot serve (it is this freedom
    that lets the reliable device serve diskless workstations).

    The home is {e sticky but not migratory}: every request starts at the
    configured home, so a transient home outage costs one failed probe per
    request while it lasts and service moves back automatically the moment
    the home recovers.  When a whole rotation fails (e.g. messages lost to
    an injected fault), the stub retries with bounded exponential backoff
    under its {!Retry.policy} instead of failing the request outright. *)

type t

val create : ?home:int -> ?policy:Retry.policy -> Cluster.t -> t
(** [create ?home ?policy cluster] forwards requests to site [home]
    (default 0).  [policy] defaults to {!Retry.default_policy} scaled by
    the cluster's [op_timeout]; pass {!Retry.no_retry} for the paper's
    original fail-fast behaviour. *)

val home : t -> int
(** The configured home site; requests always probe it first. *)

val read_block : t -> Blockdev.Block.id -> Types.read_result
(** Forward a read; on [Site_not_available] retries once at each other
    site in id order, and repeats the whole rotation under the retry
    policy when it fails outright.  Synchronous: drives the engine. *)

val write_block : t -> Blockdev.Block.id -> Blockdev.Block.t -> Types.write_result

val requests : t -> int
(** Logical block requests forwarded (one per [read_block] /
    [write_block] call — failover probes and retries are counted
    separately so per-request traffic ratios stay honest). *)

val site_attempts : t -> int
(** Individual per-site service attempts, including failover probes and
    retried rotations; [site_attempts >= requests]. *)

val failovers : t -> int
(** Times the stub had to move a request on to another site. *)

val retry_stats : t -> Retry.stats
(** Degradation counters of the bounded-retry layer (retries, timeouts,
    abandoned operations, recent errors). *)

val policy : t -> Retry.policy
