(** The device-driver stub (Figures 1 and 2 of the paper).

    In the UNIX deployment the kernel's driver stub receives block requests
    from the file system and forwards them to a user-state server, which
    runs the consistency-control algorithms; under MACH the same role is
    played by IPC to a server task.  Here the stub forwards requests into
    the cluster at a {e home} server site, and — because the server need
    not live on any particular site — fails over to another operational
    site when the home site is down or cannot serve (it is this freedom
    that lets the reliable device serve diskless workstations).

    The home is {e sticky but not migratory}: every request starts at the
    configured home, so a transient home outage costs one failed probe per
    request while it lasts and service moves back automatically the moment
    the home recovers.  When a whole rotation fails (e.g. messages lost to
    an injected fault), the stub retries with bounded exponential backoff
    under its {!Retry.policy} instead of failing the request outright.

    Because the copy schemes propagate updates fire-and-forget, the stub
    additionally imposes a {e settle barrier}: before handing a request to
    an available site other than the one that served the previous success,
    it advances virtual time by [settle] so in-flight update broadcasts
    drain first.  A single client therefore never observes the propagation
    window of its own last write across a failover — the analogue of a real
    driver draining its request queue before switching servers. *)

type t

val create :
  ?home:int -> ?policy:Retry.policy -> ?settle:float -> ?rng:Random.State.t -> Cluster.t -> t
(** [create ?home ?policy ?settle ?rng cluster] forwards requests to site
    [home] (default 0).  [policy] defaults to {!Retry.default_policy}
    scaled by the cluster's [op_timeout]; pass {!Retry.no_retry} for the
    paper's original fail-fast behaviour.  [settle] (default the cluster's
    [op_timeout]; [0.0] disables) is the virtual-time drain imposed before
    switching service between available sites.  [rng] drives decorrelated
    retry jitter; a [Decorrelated] policy without one is rejected here
    ([Invalid_argument]) rather than on the first forwarded request.

    With [Config.robustness.deadlines] enabled, every request is given an
    absolute deadline of now plus [Config.robustness.op_budget] (default:
    the retry policy's own deadline), propagated through failover,
    retries and every protocol round — see {!deadline_budget}. *)

val deadline_budget : t -> float option
(** The per-operation virtual-time budget, when deadline propagation is
    enabled in the cluster's robustness config. *)

val home : t -> int
(** The configured home site; requests always probe it first. *)

val read_block : t -> Blockdev.Block.id -> Types.read_result
(** Forward a read; on [Site_not_available] retries once at each other
    site in id order, and repeats the whole rotation under the retry
    policy when it fails outright.  Synchronous: drives the engine. *)

val write_block : t -> Blockdev.Block.id -> Blockdev.Block.t -> Types.write_result

(** {1 Group commit}

    Batched forwarding: the whole group rides one rotation, so failover
    probes, the settle barrier and bounded retries are paid once per
    batch rather than once per block.  Blocks must be distinct and in
    range (see {!Cluster.read_blocks}); a batch of one behaves exactly
    like the single-block call. *)

val read_blocks : t -> Blockdev.Block.id list -> Types.batch_read_result
val write_blocks : t -> (Blockdev.Block.id * Blockdev.Block.t) list -> Types.batch_write_result

val requests : t -> int
(** Logical block requests forwarded (one per [read_block] /
    [write_block] call — failover probes and retries are counted
    separately so per-request traffic ratios stay honest). *)

val batch_requests : t -> int
(** Batched requests forwarded (one per [read_blocks] / [write_blocks]
    call; also counted in [requests]). *)

val batched_blocks : t -> int
(** Total blocks carried by batched requests; [batched_blocks /.
    batch_requests] is the realised mean batch size. *)

val site_attempts : t -> int
(** Individual per-site service attempts, including failover probes and
    retried rotations; [site_attempts >= requests]. *)

val failovers : t -> int
(** Times the stub had to move a request on to another site. *)

val retry_stats : t -> Retry.stats
(** Degradation counters of the bounded-retry layer (retries, timeouts,
    abandoned operations, recent errors). *)

val policy : t -> Retry.policy

val settle : t -> float
(** The drain imposed before switching service between available sites. *)

val last_served : t -> int
(** The site that served the most recent successful request (the home
    until one succeeds elsewhere). *)

(** {1 Operation observers}

    Per-request completion events for the checking subsystem.  Unlike
    {!Cluster.add_observer} — which reports every per-site attempt — a
    stub observer sees one event per logical request, after failover and
    retry resolution, which is the client-visible history a consistency
    oracle must judge. *)

type op_view = {
  kind : Cluster.Observe.kind;
  block : Blockdev.Block.id;
  site : int;  (** site that served (success) or was last tried (failure) *)
  invoked : float;
  responded : float;
  payload : Blockdev.Block.t option;
      (** data written (all writes) or returned (successful reads) *)
  version : int option;  (** version assigned/served, on success *)
  error : Types.failure_reason option;
}

val add_observer : t -> (op_view -> unit) -> unit
