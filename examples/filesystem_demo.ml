(* File-system transparency demo (the Section 2 argument).

   Fs.Flat_fs is a functor over the ordinary block-device signature.  We
   mount the *same* file-system code twice: once on a single in-memory
   disk, once on a replicated reliable device — and run the same workload.
   On the single disk, a media failure kills everything; on the reliable
   device, sites die and the files do not notice. *)

module Fs_on_disk = Fs.Flat_fs.Make (Blockdev.Mem_device)
module Fs_on_reliable = Fs.Flat_fs.Make (Blockrep.Reliable_device)

let check = function Ok v -> v | Error e -> failwith (Fs.Flat_fs.error_to_string e)

(* Locate the data block holding motd's contents by scanning the device
   through the ordinary read interface — both devices implement it. *)
let holds_motd b =
  let s = Blockdev.Block.to_string b in
  String.length s >= 10 && String.sub s 0 10 = "hello from"

let find_motd_block read =
  let rec go i =
    if i >= 128 then failwith "motd block not found"
    else match read i with Some b when holds_motd b -> i | _ -> go (i + 1)
  in
  go 0

let exercise_files create write read list_files label =
  create "motd" |> check;
  write "motd" (Bytes.of_string "hello from a block device\n") |> check;
  create "data.log" |> check;
  write "data.log" (Bytes.of_string (String.concat "\n" (List.init 50 (Printf.sprintf "record %04d"))))
  |> check;
  let motd = read "motd" |> check in
  Printf.printf "[%s] motd = %S\n" label (Bytes.to_string motd);
  Printf.printf "[%s] files: %s\n" label (String.concat ", " (list_files () |> check))

let () =
  (* 1. One ordinary disk. *)
  let disk = Blockdev.Mem_device.create ~capacity:128 in
  let fs1 = Fs_on_disk.format disk |> check in
  exercise_files (Fs_on_disk.create fs1) (fun n b -> Fs_on_disk.write fs1 n b) (Fs_on_disk.read fs1)
    (fun () -> Fs_on_disk.list fs1)
    "single disk";
  (* A latent sector error: the sector holding motd rots.  One disk means
     one copy — there is no peer to re-read it from, so the data is gone. *)
  let rotten = find_motd_block (Blockdev.Mem_device.read_block disk) in
  Blockdev.Mem_device.inject_bitrot disk rotten;
  (match Fs_on_disk.read fs1 "motd" with
  | Ok _ -> Printf.printf "[single disk] rotten sector served?!\n"
  | Error e ->
      Printf.printf "[single disk] bit rot on block %d: %s — no peer to repair from, data lost\n"
        rotten (Fs.Flat_fs.error_to_string e));
  Blockdev.Mem_device.fail disk;
  (match Fs_on_disk.read fs1 "motd" with
  | Ok _ -> Printf.printf "[single disk] still readable?!\n"
  | Error e -> Printf.printf "[single disk] after disk failure: %s\n" (Fs.Flat_fs.error_to_string e));

  (* 2. The same file system code on a reliable device (available copy,
     3 sites). *)
  print_newline ();
  let config =
    Blockrep.Config.make_exn ~scheme:Blockrep.Types.Available_copy ~n_sites:3 ~n_blocks:128 ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let cluster = Blockrep.Reliable_device.cluster device in
  let fs2 = Fs_on_reliable.format device |> check in
  exercise_files (Fs_on_reliable.create fs2)
    (fun n b -> Fs_on_reliable.write fs2 n b)
    (Fs_on_reliable.read fs2)
    (fun () -> Fs_on_reliable.list fs2)
    "reliable device";

  Blockrep.Cluster.fail_site cluster 0;
  Blockrep.Cluster.fail_site cluster 2;
  Printf.printf "[reliable device] sites 0 and 2 failed; appending to data.log...\n";
  Fs_on_reliable.append fs2 "data.log" (Bytes.of_string "\nwritten during double failure") |> check;
  (match Fs_on_reliable.read fs2 "motd" with
  | Ok b -> Printf.printf "[reliable device] motd still reads: %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "[reliable device] read failed: %s\n" (Fs.Flat_fs.error_to_string e));

  (* Repair, let recovery finish, and check structural integrity. *)
  Blockrep.Cluster.repair_site cluster 0;
  Blockrep.Cluster.repair_site cluster 2;
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 100.0);
  Fs_on_reliable.fsck fs2 |> check;
  Printf.printf "[reliable device] all sites repaired, fsck clean, replicas consistent: %b\n"
    (Blockrep.Cluster.consistent_available_stores cluster);
  let st = Fs_on_reliable.stat fs2 "data.log" |> check in
  Printf.printf "[reliable device] data.log: %d bytes in %d blocks (inode %d)\n" st.Fs.Flat_fs.size
    st.Fs.Flat_fs.blocks_used st.Fs.Flat_fs.inode;

  (* 3. The same latent fault that killed the single disk's file: the home
     site's copy of motd rots.  The next read detects the bad checksum,
     quarantines the copy, and heals it from a peer — the file system
     never notices. *)
  print_newline ();
  let rotten = find_motd_block (Blockrep.Reliable_device.read_block device) in
  Blockrep.Cluster.inject_bitrot cluster ~site:0 ~block:rotten;
  Printf.printf "[reliable device] site 0 copy of block %d rotted (checksum ok: %b)\n" rotten
    (Blockrep.Cluster.checksum_ok cluster ~site:0 ~block:rotten);
  (match Fs_on_reliable.read fs2 "motd" with
  | Ok b -> Printf.printf "[reliable device] motd reads through the fault: %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "[reliable device] read failed: %s\n" (Fs.Flat_fs.error_to_string e));
  let c = Blockrep.Cluster.storage_counters cluster in
  Printf.printf "[reliable device] copy healed from a peer: checksum ok again: %b (%d repaired)\n"
    (Blockrep.Cluster.checksum_ok cluster ~site:0 ~block:rotten)
    c.Blockdev.Durable_store.repaired_blocks
