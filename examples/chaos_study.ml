(* Chaos study: drive every scheme through its supported fault envelope
   under a one-copy consistency oracle, then step outside the envelope on
   purpose and watch the oracle catch the resulting violations — with a
   shrunken, replayable schedule for each.

   The envelopes (see Check.Chaos):
     - available copy / naive available copy: site failures + whole-system
       crashes + benign message faults (duplicate, reorder, jitter, delay);
     - voting / dynamic voting: benign message faults only.  The paper's
       one-round write (commit on votes, one unacknowledged update
       multicast — the 1+u message budget of Section 5) leaves a window
       where a voter crashes after its vote was counted but before the
       update reaches its disk; a read quorum formed later without the
       writer can then be jointly stale.  This study demonstrates exactly
       that, and also the classic broken-quorum configuration (read
       threshold 1). *)

let section title = Format.printf "@.== %s ==@.@." title

let () =
  section "Supported envelopes: 100 seeds per scheme, zero violations expected";
  let seeds = List.init 100 (fun i -> i + 1) in
  let rows =
    List.map
      (fun scheme ->
        let env = Check.Chaos.default_env scheme in
        let sweep = Check.Chaos.sweep ~shrink_failures:false env ~seeds in
        Report.Chaos_report.row_of_sweep ~label:(Blockrep.Types.scheme_to_string scheme) sweep)
      [
        Blockrep.Types.Voting;
        Blockrep.Types.Available_copy;
        Blockrep.Types.Naive_available_copy;
        Blockrep.Types.Dynamic_voting;
      ]
  in
  Format.printf "%a@." Report.Chaos_report.print rows;

  section "Outside the envelope: voting under site failures";
  let env =
    { (Check.Chaos.default_env Blockrep.Types.Voting) with Check.Chaos.failures = true }
  in
  let sweep = Check.Chaos.sweep env ~seeds:(List.init 40 (fun i -> i + 1)) in
  Format.printf "%a@."
    Report.Chaos_report.print
    [ Report.Chaos_report.row_of_sweep ~label:"voting+failures" sweep ];
  Format.printf "%a@." Report.Chaos_report.print_failure sweep;
  Format.printf
    "The shrunken schedule above is the vote-window race in its smallest form: a write@.\
     commits on votes while a voter is crashing, the update multicast never reaches the@.\
     voter's disk, and once the writer itself goes down the surviving sites form a read@.\
     quorum that is jointly stale.@.";

  section "Outside the envelope: weakened MCV (read threshold 1)";
  let env =
    {
      (Check.Chaos.default_env Blockrep.Types.Voting) with
      Check.Chaos.failures = true;
      weaken_read = Some 1;
      weaken_write = Some 2;
    }
  in
  let sweep = Check.Chaos.sweep env ~seeds:(List.init 40 (fun i -> i + 1)) in
  Format.printf "%a@."
    Report.Chaos_report.print
    [ Report.Chaos_report.row_of_sweep ~label:"voting r=1 (unsafe)" sweep ];
  Format.printf "%a@." Report.Chaos_report.print_failure sweep;
  Format.printf
    "With a read threshold of 1 a read no longer intersects every write quorum, so a@.\
     failed-over client can be served from a copy the writes never reached.@."
