(* Fault study: how hard does the reliable device work on a lossy wire?

   The paper's evaluation (Sections 4-5) assumes messages are never lost.
   This study relaxes that assumption: it sweeps the per-delivery drop
   probability and drives a fixed workload through a reliable device for
   each of the three consistency schemes, reporting how many operations
   needed the bounded-retry layer to complete, and how many were finally
   abandoned.  A second pass shows the per-device degradation table from
   [Report.Degradation].

   Run:  dune exec examples/fault_study.exe *)

let printf = Printf.printf

let sweep_drop_rates () =
  printf "operations completed under message loss (n=3, 200 ops, 2 reads/write)\n";
  printf "%-22s %8s %10s %8s %8s %8s %8s %8s\n" "scheme" "drop" "completed" "failed" "retries"
    "recover" "timeout" "faults";
  List.iter
    (fun scheme ->
      List.iter
        (fun drop ->
          let profile = Net.Faults.make_exn ~drop () in
          let s =
            Workload.Experiment.measure_degradation ~scheme ~n_sites:3 ~fault_profile:profile ()
          in
          printf "%-22s %8.2f %10d %8d %8d %8d %8d %8d\n"
            (Blockrep.Types.scheme_to_string scheme)
            drop s.Workload.Experiment.completed s.Workload.Experiment.failed
            s.Workload.Experiment.retries s.Workload.Experiment.recovered
            s.Workload.Experiment.timeouts s.Workload.Experiment.faults_injected)
        [ 0.0; 0.05; 0.1; 0.2 ];
      printf "\n")
    [
      Blockrep.Types.Voting; Blockrep.Types.Available_copy; Blockrep.Types.Naive_available_copy;
    ]

let degradation_table () =
  printf "per-device degradation detail (voting, n=3, 60 ops)\n\n";
  let rows =
    List.map
      (fun drop ->
        let config =
          Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:3 ~n_blocks:16 ~seed:51
            ~fault_profile:(Net.Faults.make_exn ~drop ~duplicate:(drop /. 2.0) ())
            ()
        in
        let device = Blockrep.Reliable_device.of_config config in
        for i = 0 to 59 do
          let block = i mod 16 in
          if i mod 3 = 0 then
            ignore
              (Blockrep.Reliable_device.write_block device block
                 (Blockdev.Block.of_string (Printf.sprintf "w%d" i)))
          else ignore (Blockrep.Reliable_device.read_block device block)
        done;
        Report.Degradation.collect ~label:(Printf.sprintf "voting drop=%.2f" drop) device)
      [ 0.0; 0.1; 0.2 ]
  in
  Report.Degradation.print Format.std_formatter ~errors:true rows;
  Format.pp_print_newline Format.std_formatter ()

let () =
  sweep_drop_rates ();
  degradation_table ()
