(* Quickstart: a reliable device in a dozen lines.

   Build a 3-site replicated block device running the naive available copy
   scheme — the paper's algorithm of choice — write and read through the
   ordinary device interface, then kill sites and watch the device keep
   serving until every copy is gone. *)

let printf = Printf.printf

let () =
  let config =
    Blockrep.Config.make_exn ~scheme:Blockrep.Types.Naive_available_copy ~n_sites:3 ~n_blocks:16 ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let cluster = Blockrep.Reliable_device.cluster device in

  printf "A reliable device with %d server sites, %d blocks, scheme %s\n\n"
    (Blockrep.Cluster.n_sites cluster)
    (Blockrep.Reliable_device.capacity device)
    (Blockrep.Types.scheme_to_string (Blockrep.Cluster.scheme cluster));

  (* Ordinary block-device usage: the client cannot tell this from a disk. *)
  assert (Blockrep.Reliable_device.write_block device 0 (Blockdev.Block.of_string "first block"));
  assert (Blockrep.Reliable_device.write_block device 1 (Blockdev.Block.of_string "second block"));
  (match Blockrep.Reliable_device.read_block device 0 with
  | Some b -> printf "read block 0 -> %S\n" (String.sub (Blockdev.Block.to_string b) 0 11)
  | None -> printf "read block 0 failed\n");

  (* One site dies: the device does not even hiccup. *)
  Blockrep.Cluster.fail_site cluster 0;
  printf "\nsite 0 failed; device available? %b\n" (Blockrep.Cluster.system_available cluster);
  assert (Blockrep.Reliable_device.write_block device 2 (Blockdev.Block.of_string "during failure"));
  (match Blockrep.Reliable_device.read_block device 2 with
  | Some b -> printf "read block 2 -> %S (stub failed over %d time(s); home stays %d)\n"
                (String.sub (Blockdev.Block.to_string b) 0 14)
                (Blockrep.Driver_stub.failovers (Blockrep.Reliable_device.stub device))
                (Blockrep.Driver_stub.home (Blockrep.Reliable_device.stub device))
  | None -> printf "read block 2 failed\n");

  (* A second site dies: still one available copy, still serving. *)
  Blockrep.Cluster.fail_site cluster 1;
  printf "\nsite 1 failed too; device available? %b\n" (Blockrep.Cluster.system_available cluster);
  assert (Blockrep.Reliable_device.read_block device 0 <> None);

  (* All sites down: now, and only now, the device is unavailable. *)
  Blockrep.Cluster.fail_site cluster 2;
  printf "\nall sites failed; device available? %b\n" (Blockrep.Cluster.system_available cluster);
  assert (Blockrep.Reliable_device.read_block device 0 = None);

  (* Repair everyone; the naive scheme waits for all copies, finds the most
     current one, and brings the rest up to date. *)
  Blockrep.Cluster.repair_site cluster 0;
  Blockrep.Cluster.repair_site cluster 1;
  Blockrep.Cluster.repair_site cluster 2;
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 100.0);
  printf "\nall sites repaired; device available? %b\n" (Blockrep.Cluster.system_available cluster);
  (match Blockrep.Reliable_device.read_block device 2 with
  | Some b -> printf "read block 2 -> %S (survived the total failure)\n"
                (String.sub (Blockdev.Block.to_string b) 0 14)
  | None -> printf "read block 2 failed\n");

  printf "\nhigh-level transmissions used:\n%s\n"
    (Format.asprintf "%a" Net.Traffic.pp (Blockrep.Cluster.traffic cluster))
